"""In-memory tuple store backing the hidden-database simulator.

A :class:`Table` holds ``n`` tuples over a :class:`~repro.hiddendb.attributes.Schema`.
Ranking-attribute values live in a dense ``(n, m)`` numpy integer matrix in
preference space (smaller is better); filtering attributes live in parallel
per-name integer columns.  The matrix layout keeps query matching -- the hot
path of every experiment, executed once per issued query -- vectorised.

The table also exposes the *ground-truth* skyline and K-skyband oracles used
to verify the discovery algorithms.  These oracles see the full data and are
never available to the algorithms themselves, which may only go through
:class:`~repro.hiddendb.interface.TopKInterface`.
"""

from __future__ import annotations

from typing import Iterator, Mapping, NamedTuple, Sequence

import numpy as np

from .attributes import Attribute, InterfaceKind, Schema
from .errors import InvalidDomainValueError, UnknownAttributeError
from .query import Query


class Row(NamedTuple):
    """A tuple returned through the search interface.

    ``rid`` is the internal row identifier (stable across queries, analogous
    to the listing URL of a real result), and ``values`` are the ranking
    attribute values in schema order, in preference space.

    A ``NamedTuple`` rather than a dataclass: every query answer builds
    ``k`` of these on the serving hot path, and tuple construction is ~4x
    cheaper than a frozen dataclass ``__init__``.  Indexing and length are
    delegated to ``values`` (a row *is* its value vector to callers).
    """

    rid: int
    values: tuple[int, ...]

    def __getitem__(self, index: int) -> int:
        return self.values[index]

    def __len__(self) -> int:
        return len(self.values)

    def __repr__(self) -> str:
        body = ",".join(str(v) for v in self.values)
        return f"Row#{self.rid}({body})"


class Table:
    """An immutable collection of tuples over a schema."""

    def __init__(
        self,
        schema: Schema,
        ranking_values: np.ndarray | Sequence[Sequence[int]],
        filter_values: Mapping[str, np.ndarray | Sequence[int]] | None = None,
    ) -> None:
        matrix = np.asarray(ranking_values, dtype=np.int64)
        if matrix.ndim == 1:
            matrix = matrix.reshape(-1, 1)
        if matrix.ndim != 2:
            raise ValueError("ranking_values must be a 2-D array")
        if matrix.shape[1] != schema.m:
            raise ValueError(
                f"ranking_values has {matrix.shape[1]} columns but schema "
                f"declares {schema.m} ranking attributes"
            )
        for column, attribute in enumerate(schema.ranking_attributes):
            if matrix.shape[0] == 0:
                break
            lo = int(matrix[:, column].min())
            hi = int(matrix[:, column].max())
            if lo < 0 or hi > attribute.max_value:
                raise InvalidDomainValueError(
                    f"column {attribute.name!r}: values span [{lo}, {hi}] but "
                    f"domain is [0, {attribute.max_value}]"
                )
        self._schema = schema
        self._matrix = matrix
        self._matrix.setflags(write=False)
        self._filters: dict[str, np.ndarray] = {}
        expected = {a.name for a in schema.filtering_attributes}
        provided = set(filter_values or {})
        if not provided <= expected:
            raise UnknownAttributeError(
                f"unknown filtering columns: {sorted(provided - expected)}"
            )
        for name, column_values in (filter_values or {}).items():
            column = np.asarray(column_values, dtype=np.int64)
            if column.shape != (matrix.shape[0],):
                raise ValueError(
                    f"filter column {name!r} has shape {column.shape}, "
                    f"expected ({matrix.shape[0]},)"
                )
            column.setflags(write=False)
            self._filters[name] = column

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def schema(self) -> Schema:
        """The table's schema."""
        return self._schema

    @property
    def n(self) -> int:
        """Number of tuples."""
        return int(self._matrix.shape[0])

    @property
    def m(self) -> int:
        """Number of ranking attributes."""
        return int(self._matrix.shape[1])

    @property
    def matrix(self) -> np.ndarray:
        """Read-only ``(n, m)`` ranking-value matrix (preference space)."""
        return self._matrix

    def __len__(self) -> int:
        return self.n

    def row(self, rid: int) -> Row:
        """Materialise the row with identifier ``rid``."""
        return Row(rid, tuple(int(v) for v in self._matrix[rid]))

    def rows(self, rids: Sequence[int]) -> tuple[Row, ...]:
        """Materialise several rows at once.

        One fancy-indexed slice plus a single ``tolist`` pass -- on the
        serving hot path (every query answer materialises its top-k) this
        is ~10x cheaper than ``row()`` per id, which pays a numpy scalar
        conversion per cell.
        """
        index = np.asarray(rids, dtype=np.int64)
        if index.size == 0:
            return ()
        values = self._matrix[index].tolist()
        return tuple(
            Row(rid, tuple(row_values))
            for rid, row_values in zip(index.tolist(), values)
        )

    def iter_rows(self) -> Iterator[Row]:
        """Iterate over all rows (test / example use only)."""
        for rid in range(self.n):
            yield self.row(rid)

    def filter_value(self, name: str, rid: int) -> int:
        """Filtering-attribute value of row ``rid``."""
        try:
            return int(self._filters[name][rid])
        except KeyError:
            raise UnknownAttributeError(f"no filter column {name!r}") from None

    @property
    def filter_names(self) -> tuple[str, ...]:
        """Names of the filtering columns that actually carry data."""
        return tuple(self._filters)

    def filter_column(self, name: str) -> np.ndarray:
        """Read-only values of filtering column ``name`` (all rows)."""
        try:
            return self._filters[name]
        except KeyError:
            raise UnknownAttributeError(f"no filter column {name!r}") from None

    # ------------------------------------------------------------------
    # query evaluation
    # ------------------------------------------------------------------
    def match_mask(self, query: Query) -> np.ndarray:
        """Boolean mask of rows satisfying ``query``."""
        mask = np.ones(self.n, dtype=bool)
        for index, interval in query.ranges.items():
            column = self._matrix[:, index]
            if interval.lo > 0:
                mask &= column >= interval.lo
            attribute = self._schema.ranking_attributes[index]
            if interval.hi < attribute.max_value:
                mask &= column <= interval.hi
        for name, value in query.filters.items():
            try:
                column = self._filters[name]
            except KeyError:
                raise UnknownAttributeError(f"no filter column {name!r}") from None
            mask &= column == value
        return mask

    def match_indices(self, query: Query) -> np.ndarray:
        """Row identifiers of rows satisfying ``query``."""
        return np.flatnonzero(self.match_mask(query))

    def count_matches(self, query: Query) -> int:
        """Number of rows satisfying ``query``."""
        return int(self.match_mask(query).sum())

    # ------------------------------------------------------------------
    # ground-truth oracles (not reachable through the web interface)
    # ------------------------------------------------------------------
    def skyline_indices(self) -> np.ndarray:
        """Row identifiers of the true skyline, sorted ascending."""
        from ..core.dominance import skyline_indices

        return skyline_indices(self._matrix)

    def skyline_rows(self) -> tuple[Row, ...]:
        """The true skyline tuples."""
        return self.rows(self.skyline_indices())

    def skyband_indices(self, k_band: int) -> np.ndarray:
        """Row identifiers of the true top-``k_band`` skyband, sorted."""
        from ..core.dominance import skyband_indices

        return skyband_indices(self._matrix, k_band)

    def subsample(self, n: int, seed: int = 0) -> "Table":
        """A uniform random sample of ``n`` rows (used by the n-scaling
        experiments, mirroring the paper's subsampling of the DOT data)."""
        if n > self.n:
            raise ValueError(f"cannot sample {n} rows from {self.n}")
        rng = np.random.default_rng(seed)
        chosen = np.sort(rng.choice(self.n, size=n, replace=False))
        filters = {name: column[chosen] for name, column in self._filters.items()}
        return Table(self._schema, self._matrix[chosen], filters)

    def project_ranking(self, indices: Sequence[int]) -> "Table":
        """A table keeping only the ranking attributes at ``indices``.

        Used by the vary-``m`` experiments, which run discovery over attribute
        prefixes of the flights dataset.
        """
        kept = [self._schema.ranking_attributes[i] for i in indices]
        schema = Schema(tuple(kept) + self._schema.filtering_attributes)
        matrix = self._matrix[:, list(indices)]
        return Table(schema, matrix, dict(self._filters))

    def with_kinds(self, kinds: Mapping[str, InterfaceKind]) -> "Table":
        """A table whose named attributes get new interface kinds.

        Used to study the same data under different interface taxonomies
        (e.g. Figure 19 sweeps the number of RQ vs PQ attributes).
        """
        attributes = []
        for attribute in self._schema.attributes:
            kind = kinds.get(attribute.name, attribute.kind)
            attributes.append(
                Attribute(attribute.name, attribute.domain_size, kind,
                          attribute.labels)
            )
        return Table(Schema(attributes), self._matrix, dict(self._filters))

    def __repr__(self) -> str:
        return f"Table(n={self.n}, schema={self._schema!r})"
