"""In-memory tuple store backing the hidden-database simulator.

A :class:`Table` holds ``n`` tuples over a :class:`~repro.hiddendb.attributes.Schema`.
Ranking-attribute values live in a dense ``(n, m)`` numpy integer matrix in
preference space (smaller is better); filtering attributes live in parallel
per-name integer columns.  The matrix layout keeps query matching -- the hot
path of every experiment, executed once per issued query -- vectorised.

The table also exposes the *ground-truth* skyline and K-skyband oracles used
to verify the discovery algorithms.  These oracles see the full data and are
never available to the algorithms themselves, which may only go through
:class:`~repro.hiddendb.interface.TopKInterface`.
"""

from __future__ import annotations

import threading
from typing import Any, Iterator, Mapping, NamedTuple, Sequence

import numpy as np

from .attributes import Attribute, InterfaceKind, Schema
from .errors import InvalidDomainValueError, UnknownAttributeError
from .query import Query


class Row(NamedTuple):
    """A tuple returned through the search interface.

    ``rid`` is the internal row identifier (stable across queries, analogous
    to the listing URL of a real result), and ``values`` are the ranking
    attribute values in schema order, in preference space.

    A ``NamedTuple`` rather than a dataclass: every query answer builds
    ``k`` of these on the serving hot path, and tuple construction is ~4x
    cheaper than a frozen dataclass ``__init__``.  Indexing and length are
    delegated to ``values`` (a row *is* its value vector to callers).
    """

    rid: int
    values: tuple[int, ...]

    def __getitem__(self, index: int) -> int:
        return self.values[index]

    def __len__(self) -> int:
        return len(self.values)

    def __repr__(self) -> str:
        body = ",".join(str(v) for v in self.values)
        return f"Row#{self.rid}({body})"


class Table:
    """A collection of tuples over a schema.

    Positions vs. rids: tuples occupy dense *positions* ``0 .. n-1`` (the
    indices every vectorised path -- ``match_indices``, rankers, the
    oracles -- works in), while each tuple also carries a stable *rid*
    (the identifier a search answer exposes, analogous to a listing URL).
    For a freshly built table the two coincide; once tuples are deleted
    or inserted through :meth:`apply_mutations` they diverge -- positions
    stay dense, rids stay stable and are never reused.

    Mutation model: a table starts at ``data_version`` 0 and each applied
    mutation batch advances it by one.  Serving engines snapshot the
    table's state (:meth:`snapshot_view`) and compare versions to decide
    when to rebuild, so concurrent readers always see a coherent
    (possibly one-batch-stale) state.
    """

    def __init__(
        self,
        schema: Schema,
        ranking_values: np.ndarray | Sequence[Sequence[int]],
        filter_values: Mapping[str, np.ndarray | Sequence[int]] | None = None,
        *,
        rids: np.ndarray | Sequence[int] | None = None,
        data_version: int = 0,
    ) -> None:
        matrix = np.asarray(ranking_values, dtype=np.int64)
        if matrix.ndim == 1:
            matrix = matrix.reshape(-1, 1)
        if matrix.ndim != 2:
            raise ValueError("ranking_values must be a 2-D array")
        if matrix.shape[1] != schema.m:
            raise ValueError(
                f"ranking_values has {matrix.shape[1]} columns but schema "
                f"declares {schema.m} ranking attributes"
            )
        for column, attribute in enumerate(schema.ranking_attributes):
            if matrix.shape[0] == 0:
                break
            lo = int(matrix[:, column].min())
            hi = int(matrix[:, column].max())
            if lo < 0 or hi > attribute.max_value:
                raise InvalidDomainValueError(
                    f"column {attribute.name!r}: values span [{lo}, {hi}] but "
                    f"domain is [0, {attribute.max_value}]"
                )
        self._schema = schema
        self._matrix = matrix
        self._matrix.setflags(write=False)
        self._filters: dict[str, np.ndarray] = {}
        expected = {a.name for a in schema.filtering_attributes}
        provided = set(filter_values or {})
        if not provided <= expected:
            raise UnknownAttributeError(
                f"unknown filtering columns: {sorted(provided - expected)}"
            )
        for name, column_values in (filter_values or {}).items():
            column = np.asarray(column_values, dtype=np.int64)
            if column.shape != (matrix.shape[0],):
                raise ValueError(
                    f"filter column {name!r} has shape {column.shape}, "
                    f"expected ({matrix.shape[0]},)"
                )
            column.setflags(write=False)
            self._filters[name] = column
        if rids is None:
            rid_column = np.arange(matrix.shape[0], dtype=np.int64)
        else:
            rid_column = np.asarray(rids, dtype=np.int64)
            if rid_column.shape != (matrix.shape[0],):
                raise ValueError(
                    f"rids has shape {rid_column.shape}, "
                    f"expected ({matrix.shape[0]},)"
                )
            if len(np.unique(rid_column)) != rid_column.size:
                raise ValueError("rids must be unique")
        rid_column.setflags(write=False)
        self._rids = rid_column
        self._next_rid = (
            int(rid_column.max()) + 1 if rid_column.size else 0
        )
        self._data_version = int(data_version)
        self._mutate_lock = threading.Lock()

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def schema(self) -> Schema:
        """The table's schema."""
        return self._schema

    @property
    def n(self) -> int:
        """Number of tuples."""
        return int(self._matrix.shape[0])

    @property
    def m(self) -> int:
        """Number of ranking attributes."""
        return int(self._matrix.shape[1])

    @property
    def matrix(self) -> np.ndarray:
        """Read-only ``(n, m)`` ranking-value matrix (preference space)."""
        return self._matrix

    def __len__(self) -> int:
        return self.n

    @property
    def rids(self) -> np.ndarray:
        """Read-only stable row identifiers, by position."""
        return self._rids

    @property
    def data_version(self) -> int:
        """Monotonic mutation counter (0 = never mutated)."""
        return self._data_version

    def row(self, position: int) -> Row:
        """Materialise the row at ``position`` (its ``rid`` may differ)."""
        return Row(
            int(self._rids[position]),
            tuple(int(v) for v in self._matrix[position]),
        )

    def rows(self, positions: Sequence[int]) -> tuple[Row, ...]:
        """Materialise several rows (by position) at once.

        One fancy-indexed slice plus a single ``tolist`` pass -- on the
        serving hot path (every query answer materialises its top-k) this
        is ~10x cheaper than ``row()`` per id, which pays a numpy scalar
        conversion per cell.
        """
        index = np.asarray(positions, dtype=np.int64)
        if index.size == 0:
            return ()
        values = self._matrix[index].tolist()
        return tuple(
            Row(rid, tuple(row_values))
            for rid, row_values in zip(self._rids[index].tolist(), values)
        )

    def iter_rows(self) -> Iterator[Row]:
        """Iterate over all rows (test / example use only)."""
        for rid in range(self.n):
            yield self.row(rid)

    def filter_value(self, name: str, rid: int) -> int:
        """Filtering-attribute value of row ``rid``."""
        try:
            return int(self._filters[name][rid])
        except KeyError:
            raise UnknownAttributeError(f"no filter column {name!r}") from None

    @property
    def filter_names(self) -> tuple[str, ...]:
        """Names of the filtering columns that actually carry data."""
        return tuple(self._filters)

    def filter_column(self, name: str) -> np.ndarray:
        """Read-only values of filtering column ``name`` (all rows)."""
        try:
            return self._filters[name]
        except KeyError:
            raise UnknownAttributeError(f"no filter column {name!r}") from None

    # ------------------------------------------------------------------
    # query evaluation
    # ------------------------------------------------------------------
    def match_mask(self, query: Query) -> np.ndarray:
        """Boolean mask of rows satisfying ``query``."""
        mask = np.ones(self.n, dtype=bool)
        for index, interval in query.ranges.items():
            column = self._matrix[:, index]
            if interval.lo > 0:
                mask &= column >= interval.lo
            attribute = self._schema.ranking_attributes[index]
            if interval.hi < attribute.max_value:
                mask &= column <= interval.hi
        for name, value in query.filters.items():
            try:
                column = self._filters[name]
            except KeyError:
                raise UnknownAttributeError(f"no filter column {name!r}") from None
            mask &= column == value
        return mask

    def match_indices(self, query: Query) -> np.ndarray:
        """Row identifiers of rows satisfying ``query``."""
        return np.flatnonzero(self.match_mask(query))

    def count_matches(self, query: Query) -> int:
        """Number of rows satisfying ``query``."""
        return int(self.match_mask(query).sum())

    # ------------------------------------------------------------------
    # ground-truth oracles (not reachable through the web interface)
    # ------------------------------------------------------------------
    def skyline_indices(self) -> np.ndarray:
        """Row identifiers of the true skyline, sorted ascending."""
        from ..core.dominance import skyline_indices

        return skyline_indices(self._matrix)

    def skyline_rows(self) -> tuple[Row, ...]:
        """The true skyline tuples."""
        return self.rows(self.skyline_indices())

    def skyband_indices(self, k_band: int) -> np.ndarray:
        """Row identifiers of the true top-``k_band`` skyband, sorted."""
        from ..core.dominance import skyband_indices

        return skyband_indices(self._matrix, k_band)

    def subsample(self, n: int, seed: int = 0) -> "Table":
        """A uniform random sample of ``n`` rows (used by the n-scaling
        experiments, mirroring the paper's subsampling of the DOT data)."""
        if n > self.n:
            raise ValueError(f"cannot sample {n} rows from {self.n}")
        rng = np.random.default_rng(seed)
        chosen = np.sort(rng.choice(self.n, size=n, replace=False))
        filters = {name: column[chosen] for name, column in self._filters.items()}
        return Table(self._schema, self._matrix[chosen], filters)

    def project_ranking(self, indices: Sequence[int]) -> "Table":
        """A table keeping only the ranking attributes at ``indices``.

        Used by the vary-``m`` experiments, which run discovery over attribute
        prefixes of the flights dataset.
        """
        kept = [self._schema.ranking_attributes[i] for i in indices]
        schema = Schema(tuple(kept) + self._schema.filtering_attributes)
        matrix = self._matrix[:, list(indices)]
        return Table(schema, matrix, dict(self._filters))

    def with_kinds(self, kinds: Mapping[str, InterfaceKind]) -> "Table":
        """A table whose named attributes get new interface kinds.

        Used to study the same data under different interface taxonomies
        (e.g. Figure 19 sweeps the number of RQ vs PQ attributes).
        """
        attributes = []
        for attribute in self._schema.attributes:
            kind = kinds.get(attribute.name, attribute.kind)
            attributes.append(
                Attribute(attribute.name, attribute.domain_size, kind,
                          attribute.labels)
            )
        return Table(Schema(attributes), self._matrix, dict(self._filters))

    # ------------------------------------------------------------------
    # mutations (the freshness plane)
    # ------------------------------------------------------------------
    def snapshot_view(self) -> "Table":
        """A zero-copy, internally-consistent view of the current state.

        Serving engines bind rankers against the view: a concurrent
        :meth:`apply_mutations` swaps the parent's arrays but can never
        tear the view, whose matrix / filters / rids all belong to one
        data version.
        """
        with self._mutate_lock:
            view = Table.__new__(Table)
            view._schema = self._schema
            view._matrix = self._matrix
            view._filters = dict(self._filters)
            view._rids = self._rids
            view._next_rid = self._next_rid
            view._data_version = self._data_version
            view._mutate_lock = threading.Lock()
        return view

    def apply_mutations(
        self, ops: Sequence[Mapping[str, Any]]
    ) -> int:
        """Apply a batch of insert / delete / update operations.

        Each op is a mapping:

        * ``{"op": "insert", "values": [...], "filters": {...}}`` --
          append a tuple (ranking values in schema order; a value for
          every carried filter column is required).  The new tuple gets
          a fresh, never-reused rid.
        * ``{"op": "delete", "rid": r}`` -- drop the tuple with stable
          identifier ``r``.
        * ``{"op": "update", "rid": r, "values": [...], "filters": {...}}``
          -- overwrite the ranking vector and/or some filter values of an
          existing tuple (its rid is preserved).

        Ops apply in order; the whole batch advances ``data_version`` by
        exactly one.  Validation failures raise before anything is
        changed -- a batch applies atomically or not at all.  Returns the
        number of operations applied.
        """
        if not ops:
            return 0
        with self._mutate_lock:
            attributes = self._schema.ranking_attributes
            m = len(attributes)
            carried = tuple(self._filters)
            order = self._rids.tolist()
            values_by_rid = dict(zip(order, self._matrix.tolist()))
            filters_by_rid = {
                rid: {
                    name: int(self._filters[name][pos]) for name in carried
                }
                for pos, rid in enumerate(order)
            }
            alive = set(order)
            next_rid = self._next_rid

            def checked_values(op: Mapping[str, Any]) -> list[int]:
                values = [int(v) for v in op["values"]]
                if len(values) != m:
                    raise ValueError(
                        f"mutation values have {len(values)} entries, "
                        f"schema declares {m} ranking attributes"
                    )
                for value, attribute in zip(values, attributes):
                    attribute.validate_value(value)
                return values

            def checked_filters(
                op: Mapping[str, Any], *, complete: bool
            ) -> dict[str, int]:
                provided = {
                    name: int(v)
                    for name, v in dict(op.get("filters") or {}).items()
                }
                unknown = set(provided) - set(carried)
                if unknown:
                    raise UnknownAttributeError(
                        f"unknown filtering columns: {sorted(unknown)}"
                    )
                if complete and set(provided) != set(carried):
                    missing = sorted(set(carried) - set(provided))
                    raise ValueError(
                        f"insert missing filter values for {missing}"
                    )
                for name, value in provided.items():
                    self._schema[name].validate_value(value)
                return provided

            applied = 0
            for op in ops:
                kind = op.get("op")
                if kind == "insert":
                    values = checked_values(op)
                    filters = checked_filters(op, complete=True)
                    rid = next_rid
                    next_rid += 1
                    order.append(rid)
                    alive.add(rid)
                    values_by_rid[rid] = values
                    filters_by_rid[rid] = filters
                elif kind in ("delete", "update"):
                    rid = int(op["rid"])
                    if rid not in alive:
                        raise ValueError(f"no tuple with rid {rid}")
                    if kind == "delete":
                        alive.discard(rid)
                    else:
                        if "values" in op:
                            values_by_rid[rid] = checked_values(op)
                        filters_by_rid[rid].update(
                            checked_filters(op, complete=False)
                        )
                else:
                    raise ValueError(
                        f"unknown mutation op {kind!r}; "
                        f"expected insert, delete or update"
                    )
                applied += 1

            surviving = [rid for rid in order if rid in alive]
            matrix = np.asarray(
                [values_by_rid[rid] for rid in surviving], dtype=np.int64
            ).reshape(len(surviving), m)
            matrix.setflags(write=False)
            filters: dict[str, np.ndarray] = {}
            for name in carried:
                column = np.asarray(
                    [filters_by_rid[rid][name] for rid in surviving],
                    dtype=np.int64,
                )
                column.setflags(write=False)
                filters[name] = column
            rid_column = np.asarray(surviving, dtype=np.int64)
            rid_column.setflags(write=False)
            self._matrix = matrix
            self._filters = filters
            self._rids = rid_column
            self._next_rid = next_rid
            self._data_version += 1
        return applied

    def __repr__(self) -> str:
        return f"Table(n={self.n}, schema={self._schema!r})"
