"""Hidden web database simulator: schema, queries, ranking and top-k access.

This subpackage is the substrate every discovery algorithm runs against.  It
reproduces the access model of the paper exactly: conjunctive queries subject
to a per-attribute interface taxonomy (SQ / RQ / PQ / filtering), answered by
at most ``k`` tuples chosen by a domination-consistent ranking function, with
every issued query counted against an optional rate limit.
"""

from .attributes import Attribute, InterfaceKind, Schema
from .endpoint import (
    AsyncBatchSearchEndpoint,
    AsyncEndpointAdapter,
    AsyncSearchEndpoint,
    BatchSearchEndpoint,
    EventLoopRunner,
    SearchEndpoint,
    SyncEndpointAdapter,
    as_async_endpoint,
    as_sync_endpoint,
)
from .errors import (
    HiddenDBError,
    InvalidDomainValueError,
    QueryBudgetExceeded,
    UnknownAttributeError,
    UnsupportedQueryError,
)
from .dataplane import ENGINE_CHOICES, default_ranker, make_engine
from .interface import KEEP_BUDGET, QueryResult, TopKInterface
from .query import (
    Interval,
    Query,
    predicates_from_strings,
    query_fingerprint,
    query_key,
)
from .ranking import (
    LexicographicRanker,
    LinearRanker,
    RandomSkylineRanker,
    Ranker,
    ranker_from_label,
)
from .sqltable import SQLTable, SQLTableError, build_sqltable
from .table import Row, Table

__all__ = [
    "AsyncBatchSearchEndpoint",
    "AsyncEndpointAdapter",
    "AsyncSearchEndpoint",
    "Attribute",
    "BatchSearchEndpoint",
    "ENGINE_CHOICES",
    "EventLoopRunner",
    "SyncEndpointAdapter",
    "as_async_endpoint",
    "as_sync_endpoint",
    "HiddenDBError",
    "InterfaceKind",
    "Interval",
    "InvalidDomainValueError",
    "KEEP_BUDGET",
    "LexicographicRanker",
    "LinearRanker",
    "Query",
    "QueryBudgetExceeded",
    "QueryResult",
    "RandomSkylineRanker",
    "Ranker",
    "Row",
    "SQLTable",
    "SQLTableError",
    "Schema",
    "SearchEndpoint",
    "Table",
    "TopKInterface",
    "UnknownAttributeError",
    "UnsupportedQueryError",
    "build_sqltable",
    "default_ranker",
    "make_engine",
    "predicates_from_strings",
    "query_fingerprint",
    "query_key",
]
