"""Domination-consistent ranking functions for the top-k interface.

The paper supports any proprietary ranking function subject to a single
requirement (Section 2.1): *domination consistency* -- if tuple ``t``
dominates ``t'`` and both match a query, ``t`` must rank above ``t'``.

Every ranker here guarantees that property:

* :class:`LinearRanker` -- weighted sum of preference values with
  non-negative weights; the paper's offline experiments use the plain SUM,
  and a single-attribute weight vector models the "price low to high"
  default ranking of Blue Nile / Google Flights / Yahoo! Autos.
* :class:`LexicographicRanker` -- attribute-priority ordering; an example of
  the "ill-behaved" rankers driving the worst-case analysis of Section 3.2.
* :class:`RandomSkylineRanker` -- for each query, the top-1 is drawn
  uniformly at random from the skyline tuples matching the query.  This is
  exactly the randomness model of the paper's average-case analysis
  (Section 3.2), used to validate Eq. (4)/(5) empirically.

Ties on the primary criterion are broken by the full value vector
(lexicographically in preference space) and finally by row id, which keeps
every ranker a domination-consistent *total* order even with zero weights.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from .table import Table


class BoundRanker(abc.ABC):
    """A ranker bound to a concrete table (scores precomputed)."""

    @abc.abstractmethod
    def top(self, indices: np.ndarray, k: int) -> np.ndarray:
        """The ``k`` highest-ranked row ids among ``indices``, in rank order."""

    @property
    def has_total_order(self) -> bool:
        """Whether this ranker's order is fixed per table (query-independent).

        ``True`` means :meth:`total_order` returns a permutation and the
        serving layer may answer every query by scanning it in rank order;
        ``False`` (e.g. the per-query-randomised
        :class:`RandomSkylineRanker`) forces the per-query O(n) path.
        """
        return False

    def total_order(self) -> np.ndarray | None:
        """Best-to-worst permutation of all row ids, or ``None``.

        The permutation ranks the *whole* table under exactly the keys
        :meth:`top` uses -- (primary criterion, value vector, row id) --
        so the first ``k`` surviving positions of any query filter are
        identical to ``top(matched, k)``.  Computed lazily (one
        ``lexsort``) and cached; rankers whose order depends on the query
        return ``None``.
        """
        return None


class Ranker(abc.ABC):
    """A ranking-function factory, independent of any table."""

    @abc.abstractmethod
    def bind(self, table: Table) -> BoundRanker:
        """Precompute per-row state for ``table`` and return a bound ranker."""

    def describe(self) -> str:
        """Stable label of this ranking function's identity.

        Two rankers with the same label must rank identically: the label
        feeds the crawl store's endpoint fingerprint, so interfaces over
        the same table with *different* rankings never share a query
        ledger.  Subclasses with parameters must fold them in.
        """
        return type(self).__name__


def _lexicographic_top(
    matrix: np.ndarray,
    indices: np.ndarray,
    k: int,
    primary: np.ndarray | None = None,
) -> np.ndarray:
    """Rank ``indices`` by (primary, value vector, rid) and keep the best k."""
    if indices.size == 0:
        return indices
    keys = [indices]  # least-significant: row id
    sub = matrix[indices]
    for column in range(sub.shape[1] - 1, -1, -1):
        keys.append(sub[:, column])
    if primary is not None:
        keys.append(primary)  # most-significant
    order = np.lexsort(keys)
    return indices[order[:k]]


class _BoundLinear(BoundRanker):
    def __init__(self, matrix: np.ndarray, scores: np.ndarray) -> None:
        self._matrix = matrix
        self._scores = scores
        self._order: np.ndarray | None = None

    @property
    def has_total_order(self) -> bool:
        return True

    def total_order(self) -> np.ndarray:
        if self._order is None:
            # lexsort is stable, so full-key ties fall back to the input
            # order -- ascending row id, the same tie-break top() applies
            # through its explicit row-id key.
            keys = [
                self._matrix[:, column]
                for column in range(self._matrix.shape[1] - 1, -1, -1)
            ]
            keys.append(self._scores)
            self._order = np.lexsort(keys)
        return self._order

    def top(self, indices: np.ndarray, k: int) -> np.ndarray:
        if indices.size == 0:
            return indices
        scores = self._scores[indices]
        if indices.size > max(4 * k, 64) and k < indices.size:
            # Keep every row that could still be in the top-k after
            # tie-breaking: all rows scoring <= the k-th smallest score.
            kth = np.partition(scores, k - 1)[k - 1]
            keep = scores <= kth
            indices = indices[keep]
            scores = scores[keep]
        return _lexicographic_top(self._matrix, indices, k, primary=scores)


class LinearRanker(Ranker):
    """Rank by a non-negative weighted sum of preference values (lower wins).

    With the default unit weights this is the paper's SUM ranking function
    for the offline DOT experiments.  A one-hot weight vector yields the
    single-attribute default ranking of the live websites (e.g. price
    ascending).
    """

    def __init__(self, weights: Sequence[float] | None = None) -> None:
        self._weights = None if weights is None else tuple(float(w) for w in weights)
        if self._weights is not None and any(w < 0 for w in self._weights):
            raise ValueError(
                "negative weights would violate domination consistency"
            )

    @property
    def weights(self) -> tuple[float, ...] | None:
        """The configured weights, or ``None`` for unit weights."""
        return self._weights

    def bind(self, table: Table) -> BoundRanker:
        if self._weights is None:
            weights = np.ones(table.m)
        else:
            if len(self._weights) != table.m:
                raise ValueError(
                    f"{len(self._weights)} weights for {table.m} attributes"
                )
            weights = np.asarray(self._weights)
        scores = table.matrix @ weights
        return _BoundLinear(table.matrix, scores)

    @classmethod
    def single_attribute(cls, index: int, m: int) -> "LinearRanker":
        """Rank by attribute ``index`` only (e.g. price low-to-high)."""
        weights = [0.0] * m
        weights[index] = 1.0
        return cls(weights)

    def describe(self) -> str:
        if self._weights is None:
            return "LinearRanker"
        return f"LinearRanker(weights={list(self._weights)})"


class _BoundLexicographic(BoundRanker):
    def __init__(self, matrix: np.ndarray, priority: tuple[int, ...]) -> None:
        self._matrix = matrix
        self._priority = priority
        self._order: np.ndarray | None = None

    @property
    def has_total_order(self) -> bool:
        return True

    def total_order(self) -> np.ndarray:
        if self._order is None:
            keys = [self._matrix[:, column] for column in reversed(self._priority)]
            if keys:
                self._order = np.lexsort(keys)
            else:  # zero ranking attributes: row id is the whole order
                self._order = np.arange(self._matrix.shape[0])
        return self._order

    def top(self, indices: np.ndarray, k: int) -> np.ndarray:
        if indices.size == 0:
            return indices
        keys = [indices]
        sub = self._matrix[indices]
        for column in reversed(self._priority):
            keys.append(sub[:, column])
        order = np.lexsort(keys)
        return indices[order[:k]]


class LexicographicRanker(Ranker):
    """Rank by attribute priority (first attribute dominates the order).

    Domination-consistent because every comparison key is a preference value.
    This ranker is deliberately "unreasonable" in the paper's sense -- a tuple
    ranked first on ``priority[0]`` wins regardless of how poor its remaining
    values are -- and serves as the worst-case stressor in the experiments.
    """

    def __init__(self, priority: Sequence[int] | None = None) -> None:
        self._priority = None if priority is None else tuple(int(i) for i in priority)

    def bind(self, table: Table) -> BoundRanker:
        priority = self._priority
        if priority is None:
            priority = tuple(range(table.m))
        seen = set(priority)
        if not all(0 <= i < table.m for i in priority):
            raise ValueError(f"priority {priority} out of range for m={table.m}")
        # Complete the priority with the remaining attributes so the order is
        # total (plus the row-id key added by the bound ranker).
        full = priority + tuple(i for i in range(table.m) if i not in seen)
        return _BoundLexicographic(table.matrix, full)

    def describe(self) -> str:
        if self._priority is None:
            return "LexicographicRanker"
        return f"LexicographicRanker(priority={list(self._priority)})"


class _BoundRandomSkyline(BoundRanker):
    def __init__(
        self, matrix: np.ndarray, fallback: BoundRanker, rng: np.random.Generator
    ) -> None:
        self._matrix = matrix
        self._fallback = fallback
        self._rng = rng

    def top(self, indices: np.ndarray, k: int) -> np.ndarray:
        from ..core.dominance import skyline_indices

        if indices.size == 0:
            return indices
        local_skyline = skyline_indices(self._matrix[indices])
        chosen = int(indices[local_skyline[self._rng.integers(len(local_skyline))]])
        if k == 1:
            return np.array([chosen], dtype=indices.dtype)
        rest = indices[indices != chosen]
        tail = self._fallback.top(rest, k - 1)
        return np.concatenate(([chosen], tail)).astype(indices.dtype)


class RandomSkylineRanker(Ranker):
    """The average-case ranking model of Section 3.2.

    For every query, the returned top-1 tuple is chosen uniformly at random
    from the skyline of the *matching* tuples; positions 2..k follow a
    domination-consistent fallback.  The choice is domination-consistent
    because a matching-skyline tuple is, by definition, not dominated by any
    other matching tuple.

    The selection consumes one random draw per query, so results depend on
    the query sequence; seed the ranker for reproducibility.
    """

    def __init__(self, seed: int = 0, fallback: Ranker | None = None) -> None:
        self._seed = seed
        self._fallback = fallback if fallback is not None else LinearRanker()

    def bind(self, table: Table) -> BoundRanker:
        rng = np.random.default_rng(self._seed)
        return _BoundRandomSkyline(table.matrix, self._fallback.bind(table), rng)

    def describe(self) -> str:
        return (
            f"RandomSkylineRanker(seed={self._seed}, "
            f"fallback={self._fallback.describe()})"
        )


def ranker_from_label(label: str) -> Ranker:
    """Reconstruct a :class:`Ranker` from its :meth:`Ranker.describe` label.

    The inverse of ``describe()`` for the rankers whose order can be
    persisted (linear and lexicographic); used when reopening a SQLite
    table so the serving ranking -- and therefore the endpoint
    fingerprint -- is exactly the one the rank index was built under.

    Raises
    ------
    ValueError
        If the label does not name a reconstructible ranker (e.g. the
        seeded :class:`RandomSkylineRanker`, whose per-query randomness
        cannot be captured by a persisted order).
    """
    import ast
    import re

    if label == "LinearRanker":
        return LinearRanker()
    if label == "LexicographicRanker":
        return LexicographicRanker()
    match = re.fullmatch(r"LinearRanker\(weights=(\[[^]]*\])\)", label)
    if match:
        return LinearRanker(ast.literal_eval(match.group(1)))
    match = re.fullmatch(r"LexicographicRanker\(priority=(\[[^]]*\])\)", label)
    if match:
        return LexicographicRanker(ast.literal_eval(match.group(1)))
    raise ValueError(f"cannot reconstruct a ranker from label {label!r}")


def is_domination_consistent_order(matrix: np.ndarray, order: np.ndarray) -> bool:
    """Test helper: no tuple appears after one it dominates in ``order``.

    ``matrix`` holds the value vectors of the ordered tuples; ``order`` is a
    permutation of row positions from best to worst rank.
    """
    values = matrix[order]
    count = values.shape[0]
    for later in range(count):
        for earlier in range(later):
            dominated_by_later = bool(
                np.all(values[later] <= values[earlier])
                and np.any(values[later] < values[earlier])
            )
            if dominated_by_later:
                return False
    return True
