"""Attribute and schema definitions for hidden web databases.

The paper (Section 2.2) partitions the search support for each *ranking*
attribute into three categories:

* **SQ** -- one-ended range predicates: ``A < v``, ``A <= v`` and ``A = v``.
* **RQ** -- two-ended range predicates: additionally ``A > v`` / ``A >= v``.
* **PQ** -- point predicates only: ``A = v``.

Order-less *filtering* attributes (**FILTER**) support equality only and have
no bearing on the skyline definition.

Internally every ranking attribute is stored in *preference space*: the
domain is the contiguous integer range ``[0, domain_size)`` and **smaller is
always better** (0 is the most preferred value).  Generators that model
real-world data where "larger is better" (e.g. carat, model year) attach
human-readable ``labels`` listing the raw values in preference order, so the
canonical integer encoding never leaks into user-facing output.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from .errors import InvalidDomainValueError, UnknownAttributeError


class InterfaceKind(enum.Enum):
    """Which predicates the web search form offers for an attribute."""

    SQ = "sq"  #: one-ended range: ``A < v``, ``A <= v``, ``A = v``
    RQ = "rq"  #: two-ended range: SQ plus ``A > v`` / ``A >= v``
    PQ = "pq"  #: point predicates only: ``A = v``
    FILTER = "filter"  #: order-less filtering attribute, equality only

    @property
    def is_ranking(self) -> bool:
        """Whether attributes of this kind participate in the skyline."""
        return self is not InterfaceKind.FILTER

    @property
    def supports_upper_bound(self) -> bool:
        """Whether ``A <= v`` predicates are accepted."""
        return self in (InterfaceKind.SQ, InterfaceKind.RQ)

    @property
    def supports_lower_bound(self) -> bool:
        """Whether ``A >= v`` predicates are accepted."""
        return self is InterfaceKind.RQ


@dataclass(frozen=True)
class Attribute:
    """One attribute of a hidden web database.

    Parameters
    ----------
    name:
        Unique attribute name, e.g. ``"price"``.
    domain_size:
        Number of distinct domain values.  Ranking values are the integers
        ``0 .. domain_size - 1`` in preference order (0 best).
    kind:
        The search-interface support for this attribute.
    labels:
        Optional raw domain values listed in preference order, used only for
        display (``labels[0]`` is the most preferred raw value).
    """

    name: str
    domain_size: int
    kind: InterfaceKind = InterfaceKind.RQ
    labels: tuple | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.domain_size < 1:
            raise ValueError(
                f"attribute {self.name!r}: domain_size must be >= 1, "
                f"got {self.domain_size}"
            )
        if self.labels is not None and len(self.labels) != self.domain_size:
            raise ValueError(
                f"attribute {self.name!r}: {len(self.labels)} labels for a "
                f"domain of size {self.domain_size}"
            )

    @property
    def is_ranking(self) -> bool:
        """Whether this attribute participates in the skyline definition."""
        return self.kind.is_ranking

    @property
    def max_value(self) -> int:
        """The worst (largest) preference value in the domain."""
        return self.domain_size - 1

    def validate_value(self, value: int) -> None:
        """Raise :class:`InvalidDomainValueError` if ``value`` is out of domain."""
        if not 0 <= value < self.domain_size:
            raise InvalidDomainValueError(
                f"value {value} outside domain [0, {self.domain_size}) of "
                f"attribute {self.name!r}"
            )

    def label(self, value: int):
        """Human-readable raw value for preference value ``value``."""
        self.validate_value(value)
        if self.labels is None:
            return value
        return self.labels[value]


class Schema:
    """An ordered collection of :class:`Attribute` objects.

    The schema fixes the positional layout used throughout the library:
    *ranking* attributes are addressed by their index in
    :attr:`ranking_attributes` (this is the ``A_1 .. A_m`` of the paper),
    while filtering attributes are addressed by name.
    """

    def __init__(self, attributes: Sequence[Attribute]) -> None:
        names = [attribute.name for attribute in attributes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate attribute names in schema: {names}")
        self._attributes = tuple(attributes)
        self._by_name = {attribute.name: attribute for attribute in attributes}
        self._ranking = tuple(a for a in attributes if a.is_ranking)
        self._filtering = tuple(a for a in attributes if not a.is_ranking)
        self._ranking_index = {a.name: i for i, a in enumerate(self._ranking)}

    @property
    def attributes(self) -> tuple[Attribute, ...]:
        """All attributes in declaration order."""
        return self._attributes

    @property
    def ranking_attributes(self) -> tuple[Attribute, ...]:
        """The ranking attributes ``A_1 .. A_m`` in declaration order."""
        return self._ranking

    @property
    def filtering_attributes(self) -> tuple[Attribute, ...]:
        """The order-less filtering attributes."""
        return self._filtering

    @property
    def m(self) -> int:
        """Number of ranking attributes (the paper's ``m``)."""
        return len(self._ranking)

    @property
    def domain_sizes(self) -> tuple[int, ...]:
        """Domain sizes of the ranking attributes, in order."""
        return tuple(a.domain_size for a in self._ranking)

    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __getitem__(self, name: str) -> Attribute:
        try:
            return self._by_name[name]
        except KeyError:
            raise UnknownAttributeError(f"no attribute named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def ranking_index(self, name: str) -> int:
        """Position of ranking attribute ``name`` within the ranking layout."""
        try:
            return self._ranking_index[name]
        except KeyError:
            raise UnknownAttributeError(
                f"no ranking attribute named {name!r}"
            ) from None

    def ranking_kind(self, index: int) -> InterfaceKind:
        """Interface kind of the ranking attribute at ``index``."""
        return self._ranking[index].kind

    def indices_of_kind(self, kind: InterfaceKind) -> tuple[int, ...]:
        """Ranking-attribute indices whose interface kind equals ``kind``."""
        return tuple(
            i for i, a in enumerate(self._ranking) if a.kind == kind
        )

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{a.name}:{a.kind.value}[{a.domain_size}]" for a in self._attributes
        )
        return f"Schema({parts})"
