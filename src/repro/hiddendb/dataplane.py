"""Serving engines: how a :class:`TopKInterface` answers a query.

Three interchangeable engines sit behind the unchanged interface contract,
all producing bit-identical :class:`~repro.hiddendb.interface.QueryResult`
rows (same rows, same order, same overflow flag):

* ``scan`` -- the original reference path: an O(n) boolean match mask over
  the whole table, then a per-query lexsort of the survivors.  The only
  engine that supports rankers without a query-independent order (the
  per-query-randomised :class:`~repro.hiddendb.ranking.RandomSkylineRanker`).
* ``rank`` -- the in-memory fast path: the ranker's total order is computed
  once per bind (one lexsort), the value matrix is copied into rank order,
  and each query scans that matrix top-down in growing chunks,
  short-circuiting as soon as ``k`` rows match -- O(rank of the k-th
  answer) per query instead of O(n) + sort.
* ``sqlite`` -- the SQL-native path for :class:`~repro.hiddendb.sqltable.
  SQLTable`: the same total order persisted as an indexed ``rank`` column,
  so top-k compiles to ``SELECT ... WHERE <ranges> ORDER BY rank LIMIT k``
  over a covering index, without ever loading the table into memory.

Identity argument: ``rank`` scans the *exact* permutation
:meth:`BoundRanker.total_order` produces -- keyed by (primary criterion,
value vector, row id), the same keys ``top()`` sorts by -- so the first
``k`` surviving positions of any filter are precisely ``top(matched, k)``.
``sqlite`` orders by a persisted copy of that permutation, making it
identical by construction.
"""

from __future__ import annotations

import threading
from typing import Protocol, runtime_checkable

import numpy as np

from .errors import UnknownAttributeError
from .query import Query
from .ranking import BoundRanker, LinearRanker, Ranker, ranker_from_label
from .table import Row, Table

#: Engine names accepted by :func:`make_engine` (and the CLI / service).
ENGINE_CHOICES = ("auto", "scan", "rank", "sqlite")

#: First chunk of the rank scan.  Most queries resolve inside it (the
#: top-k of a selective-enough query clusters near the top ranks), so it
#: starts small; misses grow geometrically to bound the number of passes.
_CHUNK_START = 1024
_CHUNK_GROWTH = 4
_CHUNK_CAP = 65536


@runtime_checkable
class Engine(Protocol):
    """What :class:`TopKInterface` needs from a serving engine."""

    #: Engine name as reported in metrics and ``repr``.
    label: str
    #: Whether every filtering attribute the schema declares is answerable
    #: -- when ``True`` (and queries are validated), executing a query can
    #: never raise, which unlocks the vectorised batch billing path.
    covers_filters: bool
    #: The bound ranker, or ``None`` for the SQL-native engine (which
    #: never materialises scores -- the persisted rank column is the order).
    bound: BoundRanker | None

    def top_rows(self, query: Query, k: int) -> tuple[Row, ...]:
        """The top-``k`` answer rows for ``query``, best rank first."""


def _covers_filters(table: Table) -> bool:
    declared = table.schema.filtering_attributes
    return all(attr.name in table.filter_names for attr in declared)


def _memory_view(source) -> Table:
    """An internally-consistent in-memory view of ``source``'s data.

    SQL tables materialise through ``as_memory()``; mutable in-memory
    tables hand out a zero-copy snapshot whose matrix / filters / rids
    belong to one data version; anything else serves itself.
    """
    if hasattr(source, "as_memory"):
        return source.as_memory()
    if hasattr(source, "snapshot_view"):
        return source.snapshot_view()
    return source


def _source_version(source) -> int:
    return int(getattr(source, "data_version", 0))


class _ScanEngine:
    """Reference path: full match mask + per-query lexsort (O(n)).

    Mutation-aware: the engine serves a snapshot view bound at build
    time; when the source table's ``data_version`` advances, the next
    query rebinds against a fresh snapshot under a lock.  The (view,
    bound) pair is published as one tuple so a racing reader can never
    match against new data with scores from the old bind.
    """

    label = "scan"

    def __init__(self, source, view: Table, bound: BoundRanker,
                 ranker: Ranker) -> None:
        self._source = source
        self._ranker = ranker
        self.covers_filters = _covers_filters(view)
        self._refresh_lock = threading.Lock()
        self._state: tuple[Table, BoundRanker] = (view, bound)
        self._version = _source_version(source)

    @property
    def bound(self) -> BoundRanker:
        return self._state[1]

    def _current(self) -> tuple[Table, BoundRanker]:
        version = _source_version(self._source)
        if version != self._version:
            with self._refresh_lock:
                if version != self._version:
                    view = _memory_view(self._source)
                    self._state = (view, self._ranker.bind(view))
                    self._version = _source_version(view)
        return self._state

    def top_rows(self, query: Query, k: int) -> tuple[Row, ...]:
        table, bound = self._current()
        matched = table.match_indices(query)
        top = bound.top(matched, k)
        return table.rows(top)


class _RankState:
    """One immutable build of the rank-sorted serving state."""

    __slots__ = ("combined", "columns", "filters", "maxes")

    def __init__(self, combined, columns, filters, maxes) -> None:
        self.combined = combined
        self.columns = columns
        self.filters = filters
        self.maxes = maxes


class _RankEngine:
    """Rank-ordered scan: short-circuit after ``k`` matches.

    The rank-sorted state (order permutation, reordered value matrix and
    filter columns) is built lazily on the first query and shared by all
    threads thereafter -- experiments construct many interfaces and query
    few, so paying the one-off lexsort + copy at construction time would
    penalise them.  When the source table's ``data_version`` advances,
    the next query rebinds and rebuilds the whole state under the build
    lock; the state is published as one immutable object, so a racing
    reader serves a coherent (possibly one-version-stale) order.
    """

    label = "rank"

    def __init__(self, source, view: Table, bound: BoundRanker,
                 ranker: Ranker) -> None:
        self._source = source
        self._view = view
        self._ranker = ranker
        self.bound = bound
        self.covers_filters = _covers_filters(view)
        self._build_lock = threading.Lock()
        self._state: _RankState | None = None
        self._version = _source_version(source)

    def _build(self, view: Table, bound: BoundRanker) -> _RankState:
        order = bound.total_order()
        assert order is not None, "rank engine needs a total order"
        filters = {
            name: view.filter_column(name)[order]
            for name in view.filter_names
        }
        ordered = view.matrix[order]
        # One contiguous array per attribute: the chunk masks below then
        # run over dense cache lines instead of strided matrix columns.
        columns = tuple(
            np.ascontiguousarray(ordered[:, j])
            for j in range(ordered.shape[1])
        )
        maxes = tuple(
            attribute.max_value
            for attribute in view.schema.ranking_attributes
        )
        # (rid, v0..vm-1) per row in rank order: answers materialise with
        # a single fancy-indexed slice + one tolist pass.  Stable rids
        # (which diverge from positions once tuples are deleted) ride in
        # column 0 so answers identify tuples across mutations.
        rids = getattr(view, "rids", None)
        identifiers = (
            rids[order] if rids is not None else np.asarray(order)
        )
        combined = np.concatenate(
            [identifiers.reshape(-1, 1), ordered], axis=1
        )
        return _RankState(combined, columns, filters, maxes)

    def _ensure_built(self) -> _RankState:
        state = self._state
        version = _source_version(self._source)
        if state is None or version != self._version:
            with self._build_lock:
                state = self._state
                if state is None or version != self._version:
                    if version != self._version:
                        self._view = _memory_view(self._source)
                        self.bound = self._ranker.bind(self._view)
                        self._version = _source_version(self._view)
                    state = self._build(self._view, self.bound)
                    self._state = state
        return state

    def top_rows(self, query: Query, k: int) -> tuple[Row, ...]:
        state = self._ensure_built()
        combined = state.combined
        n = combined.shape[0]
        # Compile the query into (column, lo, hi) tests, dropping bounds
        # that cannot exclude anything (the common select-all envelope).
        tests: list[tuple[np.ndarray, int, int]] = []
        ranges = query.ranges
        if ranges:
            columns = state.columns
            maxes = state.maxes
            for index, interval in ranges.items():
                lo = interval.lo
                hi = interval.hi
                if lo > 0 or hi < maxes[index]:
                    tests.append((columns[index], lo, hi))
        filters = query.filters
        if filters:
            for name, value in filters.items():
                column = state.filters.get(name)
                if column is None:
                    raise UnknownAttributeError(f"no filter column {name!r}")
                tests.append((column, value, value))

        if not tests:  # unconstrained: the top-k is rows 0..k
            count = k if k < n else n
            return self._materialize(
                combined, np.arange(count, dtype=np.intp)
            )

        first = tests[0]
        rest = tests[1:]
        positions: np.ndarray | None = None
        found = 0
        start = 0
        chunk = _CHUNK_START
        while start < n and found < k:
            stop = start + chunk
            if stop > n:
                stop = n
            column, lo, hi = first
            segment = column[start:stop]
            if lo == hi:  # point constraint (SQ/PQ probes, filters)
                mask = segment == lo
            else:
                mask = segment >= lo
                mask &= segment <= hi
            for column, lo, hi in rest:
                segment = column[start:stop]
                if lo == hi:
                    mask &= segment == lo
                else:
                    mask &= segment >= lo
                    mask &= segment <= hi
            matched = mask.nonzero()[0]
            if matched.size:
                if start:
                    matched += start
                positions = (
                    matched
                    if positions is None
                    else np.concatenate((positions, matched))
                )
                found += matched.size
            start = stop
            if chunk < _CHUNK_CAP:
                chunk = min(chunk * _CHUNK_GROWTH, _CHUNK_CAP)
        if positions is None:
            return ()
        return self._materialize(combined, positions[:k])

    def _materialize(
        self, combined: np.ndarray, positions: np.ndarray
    ) -> tuple[Row, ...]:
        if positions.size == 0:
            return ()
        return tuple(
            [Row(row[0], tuple(row[1:]))
             for row in combined[positions].tolist()]
        )


class _SQLiteEngine:
    """SQL-native path: one covering-index walk per query, no table load."""

    label = "sqlite"
    covers_filters = True  # build_sqltable persists every declared filter
    bound = None

    def __init__(self, table) -> None:
        self._table = table

    def top_rows(self, query: Query, k: int) -> tuple[Row, ...]:
        return self._table.top_rows(query, k)


def _is_sql_native(table: object, ranker: Ranker) -> bool:
    """Whether ``table`` can serve ``ranker`` straight from its rank index."""
    return (
        hasattr(table, "top_rows")
        and getattr(table, "ranking_label", None) == ranker.describe()
    )


def default_ranker(table: object) -> Ranker:
    """The ranking a table serves under when the caller names none.

    Plain in-memory tables get the paper's unit-weight SUM
    (:class:`LinearRanker`); a SQL table's persisted rank index pins the
    ranking it was built with, so its label is reconstructed instead --
    anything else would silently answer under a different order than the
    index provides.
    """
    label = getattr(table, "ranking_label", None)
    if label is not None and hasattr(table, "top_rows"):
        return ranker_from_label(label)
    return LinearRanker()


def make_engine(table, ranker: Ranker, engine: str = "auto") -> Engine:
    """Build the serving engine for ``table`` under ``ranker``.

    ``auto`` picks the fastest correct engine: the SQL-native path when
    ``table`` is a :class:`~repro.hiddendb.sqltable.SQLTable` whose
    persisted ranking matches ``ranker``; otherwise the rank-ordered scan
    when the ranker has a query-independent total order; otherwise the
    O(n) reference scan.  Forcing an engine the configuration cannot
    support raises ``ValueError`` rather than silently degrading.

    A SQL table under a *different* ranker (or a forced ``scan``/``rank``)
    is materialised in memory once via ``as_memory()``.
    """
    if engine not in ENGINE_CHOICES:
        raise ValueError(
            f"unknown engine {engine!r}; choose from {ENGINE_CHOICES}"
        )
    native = _is_sql_native(table, ranker)
    if engine == "sqlite":
        if not native:
            reason = (
                f"its rank index was built for "
                f"{getattr(table, 'ranking_label', None)!r}, "
                f"not {ranker.describe()!r}"
                if hasattr(table, "top_rows")
                else "the table is not SQLite-backed"
            )
            raise ValueError(f"cannot use the sqlite engine: {reason}")
        return _SQLiteEngine(table)
    if engine == "auto" and native:
        return _SQLiteEngine(table)
    view = _memory_view(table)
    bound = ranker.bind(view)
    if engine == "scan":
        return _ScanEngine(table, view, bound, ranker)
    if engine == "rank" and not bound.has_total_order:
        raise ValueError(
            f"cannot use the rank engine: {ranker.describe()} has no "
            "query-independent total order"
        )
    if bound.has_total_order:
        return _RankEngine(table, view, bound, ranker)
    return _ScanEngine(table, view, bound, ranker)


__all__ = [
    "ENGINE_CHOICES",
    "Engine",
    "default_ranker",
    "make_engine",
]
