"""The top-k search interface -- the only data access the algorithms get.

:class:`TopKInterface` models the proprietary search form of a hidden web
database (Section 2.1 of the paper):

* it accepts conjunctive queries, validated against the per-attribute
  interface taxonomy (SQ / RQ / PQ / filtering);
* it returns at most ``k`` matching tuples, selected by a
  domination-consistent ranking function the client cannot inspect;
* it **counts every issued query**, the paper's sole efficiency measure, and
  optionally enforces a query budget that mirrors per-IP / per-API-key rate
  limits (triggering :class:`~repro.hiddendb.errors.QueryBudgetExceeded`).

The ``overflow`` flag of a :class:`QueryResult` is the client-side proxy a
real scraper has: a query *may* have more matches exactly when it returned
``k`` tuples.  The simulator does not reveal the true match count.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Sequence

from .dataplane import default_ranker, make_engine
from .errors import HiddenDBError, QueryBudgetExceeded
from .query import Query
from .ranking import Ranker
from .table import Row, Table

#: Sentinel for :meth:`TopKInterface.reset`: distinguishes "keep the current
#: budget" (the default) from an explicit ``budget=None`` (remove the limit).
KEEP_BUDGET = object()


@dataclass(frozen=True)
class QueryResult:
    """Answer to one issued query."""

    query: Query
    rows: tuple[Row, ...]
    overflow: bool  #: ``True`` when ``len(rows) == k`` (more matches may exist)
    sequence: int  #: 1-based position of this query in the issue order

    @property
    def is_empty(self) -> bool:
        """Whether the query returned no tuples."""
        return not self.rows

    @property
    def top(self) -> Row:
        """The highest-ranked returned tuple (``rows[0]``)."""
        if not self.rows:
            raise IndexError("query returned no rows")
        return self.rows[0]


class TopKInterface:
    """A counting, validating, rate-limited top-k query endpoint.

    Parameters
    ----------
    table:
        The hidden data.
    ranker:
        Domination-consistent ranking function; defaults to the unit-weight
        :class:`~repro.hiddendb.ranking.LinearRanker` (the paper's SUM).
    k:
        Maximum number of tuples returned per query.
    budget:
        Optional hard limit on the number of queries; the ``budget + 1``-th
        query raises :class:`QueryBudgetExceeded` *without* being executed.
    validate:
        Whether to enforce the per-attribute interface taxonomy.  Leave on;
        turning it off is only useful for oracle-style test harnesses.
    record_log:
        Keep every :class:`QueryResult` in :attr:`log` (needed by the PQ
        plane-pruning rules and by debugging tools; off by default to keep
        large experiments lean).
    name:
        Optional label identifying the dataset behind this interface.  It
        feeds the crawl store's endpoint fingerprint, so two same-shaped
        interfaces over *different* data (e.g. regenerated datasets) do
        not share a query ledger.
    engine:
        Serving engine (see :mod:`repro.hiddendb.dataplane`): ``auto``
        (default) picks the fastest bit-identical path -- SQL-native for a
        :class:`~repro.hiddendb.sqltable.SQLTable` under its persisted
        ranking, the rank-ordered in-memory scan for query-independent
        rankers, the O(n) reference scan otherwise.  ``scan`` / ``rank`` /
        ``sqlite`` force a specific path.
    """

    def __init__(
        self,
        table: Table,
        ranker: Ranker | None = None,
        k: int = 1,
        budget: int | None = None,
        validate: bool = True,
        record_log: bool = False,
        name: str = "",
        engine: str = "auto",
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if budget is not None and budget < 0:
            raise ValueError(f"budget must be >= 0, got {budget}")
        self._table = table
        self._ranker = ranker if ranker is not None else default_ranker(table)
        self._engine = make_engine(table, self._ranker, engine)
        self._bound = self._engine.bound
        self._k = k
        self._budget = budget
        self._validate = validate
        self._name = name
        self._count = 0
        self._log: list[QueryResult] | None = [] if record_log else None
        # Billing (check budget, then charge) must be atomic: the execution
        # engine's pipelined strategy issues queries from worker threads.
        self._lock = threading.Lock()
        # Batches may bill upfront (one lock round-trip) only when answering
        # cannot fail afterwards: queries validated, every declared filter
        # column answerable.  Otherwise an execution error after upfront
        # billing would charge queries the per-item loop never issues.
        self._batch_fast = validate and self._engine.covers_filters

    # ------------------------------------------------------------------
    # metadata visible to a client
    # ------------------------------------------------------------------
    @property
    def schema(self):
        """The (public) schema of the search form."""
        return self._table.schema

    @property
    def k(self) -> int:
        """The top-k output limit."""
        return self._k

    @property
    def name(self) -> str:
        """Dataset label of this interface (crawl-store endpoint identity)."""
        return self._name

    @property
    def ranking_label(self) -> str:
        """Stable label of the bound ranking function.

        Part of the crawl-store endpoint identity: the same table ranked
        differently returns different top-k answers, so the two must
        never share a query ledger.
        """
        return self._ranker.describe()

    @property
    def engine(self) -> str:
        """Name of the serving engine answering queries (``scan`` /
        ``rank`` / ``sqlite``)."""
        return self._engine.label

    @property
    def data_version(self) -> int:
        """The table's monotonic mutation counter (0 = never mutated)."""
        return int(getattr(self._table, "data_version", 0))

    @property
    def queries_issued(self) -> int:
        """Total number of queries issued so far -- the paper's cost metric."""
        return self._count

    @property
    def budget(self) -> int | None:
        """The configured query budget, if any."""
        return self._budget

    @property
    def budget_remaining(self) -> int | None:
        """Queries left before the rate limit triggers (``None`` = unlimited)."""
        if self._budget is None:
            return None
        return max(self._budget - self._count, 0)

    @property
    def log(self) -> tuple[QueryResult, ...]:
        """All recorded results (empty unless ``record_log=True``)."""
        if self._log is None:
            return ()
        return tuple(self._log)

    # ------------------------------------------------------------------
    # the search endpoint
    # ------------------------------------------------------------------
    def query(self, query: Query) -> QueryResult:
        """Issue one query and return its top-k answer.

        Raises
        ------
        UnsupportedQueryError
            If the query is not expressible through this interface.
        QueryBudgetExceeded
            If the query budget is already exhausted.
        """
        if self._validate:
            query.validate(self._table.schema)
        with self._lock:
            if self._budget is not None and self._count >= self._budget:
                raise QueryBudgetExceeded(self._budget)
            self._count += 1
            sequence = self._count
        rows = self._engine.top_rows(query, self._k)
        result = QueryResult(
            query=query,
            rows=rows,
            overflow=len(rows) == self._k,
            sequence=sequence,
        )
        if self._log is not None:
            with self._lock:
                self._log.append(result)
        return result

    def batch_query(self, queries: Sequence[Query]) -> tuple[QueryResult, ...]:
        """Answer several independent queries in one call.

        Per-item billing and failure semantics are those of issuing each
        query alone: the first exhausted-budget or unsupported-query error
        aborts the remainder of the batch, carrying the answers billed
        before it as ``exc.partial_results`` (the
        :class:`~repro.hiddendb.endpoint.BatchSearchEndpoint` convention).

        When answering cannot fail (validated queries, engine covering
        every declared filter -- the common case), the whole batch is
        validated and billed under **one** lock acquisition and answered
        lock-free afterwards, so a batch costs one lock round-trip instead
        of one per item.  Configurations where execution itself may raise
        (``validate=False``, or a table missing declared filter columns)
        keep the exact per-item loop, whose interleaved bill-then-execute
        ordering their error accounting depends on.
        """
        if not self._batch_fast:
            results: list[QueryResult] = []
            for query in queries:
                try:
                    results.append(self.query(query))
                except HiddenDBError as exc:
                    exc.partial_results = tuple(results)
                    raise
            return tuple(results)

        schema = self._table.schema
        billed: list[tuple[Query, int]] = []
        error: HiddenDBError | None = None
        with self._lock:
            for query in queries:
                try:
                    query.validate(schema)
                    if self._budget is not None and self._count >= self._budget:
                        raise QueryBudgetExceeded(self._budget)
                except HiddenDBError as exc:
                    error = exc
                    break
                self._count += 1
                billed.append((query, self._count))
        answers = tuple(
            QueryResult(
                query=query,
                rows=rows,
                overflow=len(rows) == self._k,
                sequence=sequence,
            )
            for query, sequence in billed
            for rows in (self._engine.top_rows(query, self._k),)
        )
        if self._log is not None:
            with self._lock:
                self._log.extend(answers)
        if error is not None:
            error.partial_results = answers
            raise error
        return answers

    def apply_mutations(self, ops: Sequence) -> int:
        """Mutate the underlying table (insert / delete / update batch).

        Mutations are an *operator* action, not a search-form one: they
        are never billed and advance :attr:`data_version` by one per
        non-empty batch.  The serving engine notices the new version on
        the next query and rebuilds its rank state, so answers before
        and after the batch are each internally consistent.
        """
        apply = getattr(self._table, "apply_mutations", None)
        if apply is None:
            raise HiddenDBError(
                f"table {type(self._table).__name__} does not support "
                "mutations"
            )
        return int(apply(ops))

    # ------------------------------------------------------------------
    # experiment plumbing
    # ------------------------------------------------------------------
    def reset(self, budget: int | None | object = KEEP_BUDGET) -> None:
        """Clear the query counter and log; optionally change the budget.

        ``reset()`` keeps the current budget, ``reset(budget=n)`` installs a
        new one and ``reset(budget=None)`` removes the limit entirely (the
        :data:`KEEP_BUDGET` sentinel is what makes ``None`` expressible).
        """
        self._count = 0
        if self._log is not None:
            self._log = []
        if budget is not KEEP_BUDGET:
            if budget is not None and not isinstance(budget, int):
                raise TypeError(f"budget must be an int or None, got {budget!r}")
            if budget is not None and budget < 0:
                raise ValueError(f"budget must be >= 0, got {budget}")
            self._budget = budget

    def __repr__(self) -> str:
        return (
            f"TopKInterface(n={self._table.n}, k={self._k}, "
            f"issued={self._count}, budget={self._budget})"
        )
