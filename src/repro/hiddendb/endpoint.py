"""The :class:`SearchEndpoint` protocol -- the algorithms' data-access seam.

Every discovery algorithm in :mod:`repro.core` touches the hidden database
through exactly four members: the public ``schema`` of the search form, the
top-``k`` output limit, the ``query()`` call and the ``queries_issued``
counter (the paper's sole cost metric).  This protocol names that surface so
alternative backends can stand in for the in-process simulator:

* :class:`~repro.hiddendb.interface.TopKInterface` -- the canonical
  in-process implementation over a :class:`~repro.hiddendb.table.Table`;
* :class:`~repro.service.client.RemoteTopKInterface` -- the same surface
  spoken over HTTP against a :mod:`repro.service.server`, with retry/backoff
  and an optional client-side query cache.

The :class:`~repro.core.base.DiscoverySession` and the
:class:`~repro.core.facade.Discoverer` facade are typed against this
protocol, so any conforming object -- including third-party adapters over
real web search forms -- plugs into every registered algorithm unchanged.

Implementations must preserve the paper's access-model contract:

* ``query()`` answers a conjunctive :class:`~repro.hiddendb.query.Query`
  with at most ``k`` tuples under a domination-consistent ranking;
* queries the interface cannot express raise
  :class:`~repro.hiddendb.errors.UnsupportedQueryError`;
* an exhausted query allowance raises
  :class:`~repro.hiddendb.errors.QueryBudgetExceeded` *without* charging
  the rejected query;
* ``queries_issued`` is monotone and counts exactly the billable queries
  (a caching backend that answers from its cache must not advance it).

An endpoint may additionally offer the **optional** ``batch_query()``
member (:class:`BatchSearchEndpoint`): several independent queries
answered in one call -- billed, validated and fault-injected *per item*,
but paying transport overhead (one HTTP round trip against the networked
service) only once.  The execution engine's
:class:`~repro.core.engine.PipelinedStrategy` discovers the member by
duck-typing and packs frontier waves into batches; endpoints without it
are served with per-query dispatch.  Endpoints that implement
``batch_query`` (or that are driven with ``workers > 1``) must tolerate
concurrent ``query()`` calls from multiple threads.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import Future
from typing import Awaitable, Coroutine, Protocol, Sequence, runtime_checkable

from .attributes import Schema
from .interface import QueryResult
from .query import Query


@runtime_checkable
class SearchEndpoint(Protocol):
    """Structural type of a top-k hidden-database search endpoint."""

    @property
    def schema(self) -> Schema:
        """The (public) schema of the search form."""
        ...

    @property
    def k(self) -> int:
        """Maximum number of tuples returned per query."""
        ...

    @property
    def queries_issued(self) -> int:
        """Billable queries issued so far -- the paper's cost metric."""
        ...

    def query(self, query: Query) -> QueryResult:
        """Issue one conjunctive query and return its top-k answer."""
        ...


@runtime_checkable
class BatchSearchEndpoint(SearchEndpoint, Protocol):
    """A search endpoint that also answers batches in one round trip."""

    def batch_query(self, queries: Sequence[Query]) -> tuple[QueryResult, ...]:
        """Answer several independent queries in one call.

        Semantically equivalent to ``tuple(self.query(q) for q in
        queries)`` -- per-item billing, validation and failure mapping --
        but implementations amortise transport overhead across the batch.
        The first terminal per-item failure (exhausted budget, unsupported
        query) is raised with every answer actually obtained attached as
        ``exc.partial_results``: a tuple aligned with the batch (or a
        prefix of it) whose ``None`` holes mark exactly the items that
        were neither answered nor billed.  Callers never lose answers they
        paid for.
        """
        ...


@runtime_checkable
class AsyncSearchEndpoint(Protocol):
    """Structural type of a *non-blocking* top-k search endpoint.

    The async twin of :class:`SearchEndpoint`: same metadata surface
    (``schema`` / ``k`` / ``queries_issued``) and the same access-model
    contract per query, but ``aquery()`` is a coroutine, so an event-loop
    execution strategy can keep hundreds of queries in flight on one
    thread.  :class:`~repro.service.aclient.AsyncRemoteTopKInterface` is
    the canonical implementation; any blocking endpoint can be adapted
    with :func:`as_async_endpoint` (and any async endpoint made blocking
    with :func:`as_sync_endpoint`), so the two worlds compose freely.
    """

    @property
    def schema(self) -> Schema:
        """The (public) schema of the search form."""
        ...

    @property
    def k(self) -> int:
        """Maximum number of tuples returned per query."""
        ...

    @property
    def queries_issued(self) -> int:
        """Billable queries issued so far -- the paper's cost metric."""
        ...

    async def aquery(self, query: Query) -> QueryResult:
        """Issue one conjunctive query without blocking the event loop."""
        ...


@runtime_checkable
class AsyncBatchSearchEndpoint(AsyncSearchEndpoint, Protocol):
    """An async endpoint that also answers batches in one round trip.

    ``abatch_query`` carries the exact ``partial_results`` contract of
    :meth:`BatchSearchEndpoint.batch_query`.
    """

    async def abatch_query(
        self, queries: Sequence[Query]
    ) -> tuple[QueryResult, ...]:
        """Answer several independent queries in one non-blocking call."""
        ...


class EventLoopRunner:
    """An asyncio event loop on a daemon thread, fed from other threads.

    The bridge both directions of the sync/async seam stand on: the async
    execution strategy submits transport coroutines here and receives
    :class:`concurrent.futures.Future`\\ s (the same currency thread-pool
    transports use), and :class:`SyncEndpointAdapter` runs an async
    endpoint's coroutines here to present a blocking surface.  One runner
    owns one loop for its whole lifetime, so loop-affine resources
    (pooled connections) stay valid across calls.
    """

    def __init__(self, name: str = "repro-aio") -> None:
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run, name=name, daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        """The runner's event loop (for loop-affine resource keying)."""
        return self._loop

    def submit(self, coro: Coroutine) -> Future:
        """Schedule ``coro`` on the loop; a thread-safe future of it."""
        return asyncio.run_coroutine_threadsafe(coro, self._loop)

    def run(self, coro: Coroutine):
        """Run ``coro`` to completion and return its result (blocking)."""
        return self.submit(coro).result()

    def close(self, timeout: float = 5.0) -> None:
        """Cancel leftover tasks, stop the loop, join the thread."""

        async def _shutdown() -> None:
            loop = asyncio.get_running_loop()
            tasks = [
                task
                for task in asyncio.all_tasks(loop)
                if task is not asyncio.current_task()
            ]
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)
            await loop.shutdown_asyncgens()
            await loop.shutdown_default_executor()

        if self._loop.is_closed():
            return
        try:
            self.submit(_shutdown()).result(timeout=timeout)
        except Exception:
            pass
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=timeout)
        if not self._loop.is_running():
            self._loop.close()

    def __enter__(self) -> "EventLoopRunner":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class AsyncEndpointAdapter:
    """Async view of a blocking :class:`SearchEndpoint`.

    ``aquery`` (and ``abatch_query``, when the wrapped endpoint batches)
    run the blocking call on the event loop's thread executor, so a plain
    endpoint -- the in-process simulator, the blocking HTTP client -- can
    be driven by the async execution strategy unchanged.  Everything else
    (schema, counters, caches, replay nonces) is delegated verbatim.
    """

    def __init__(self, endpoint: SearchEndpoint) -> None:
        self._endpoint = endpoint
        if hasattr(endpoint, "batch_query"):
            # Instance attribute, found before __getattr__: the batch
            # member only exists when the wrapped endpoint has one, so
            # duck-typed capability checks stay truthful.
            self.abatch_query = self._abatch_query

    def __getattr__(self, name: str):
        return getattr(self._endpoint, name)

    @property
    def wrapped(self) -> SearchEndpoint:
        """The underlying blocking endpoint."""
        return self._endpoint

    async def aquery(self, query: Query) -> QueryResult:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self._endpoint.query, query)

    async def _abatch_query(
        self, queries: Sequence[Query]
    ) -> tuple[QueryResult, ...]:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None, self._endpoint.batch_query, list(queries)
        )


class SyncEndpointAdapter:
    """Blocking view of an :class:`AsyncSearchEndpoint`.

    Runs the endpoint's coroutines on a private :class:`EventLoopRunner`
    (started lazily, closed via :meth:`close`), so an async-native
    endpoint drops into serial/pipelined strategies and every other
    blocking call site.
    """

    def __init__(self, endpoint: AsyncSearchEndpoint) -> None:
        self._endpoint = endpoint
        self._runner: EventLoopRunner | None = None
        self._runner_lock = threading.Lock()
        if hasattr(endpoint, "abatch_query"):
            self.batch_query = self._batch_query

    def __getattr__(self, name: str):
        return getattr(self._endpoint, name)

    @property
    def wrapped(self) -> AsyncSearchEndpoint:
        """The underlying async endpoint."""
        return self._endpoint

    def _run(self, coro: Coroutine):
        with self._runner_lock:
            if self._runner is None:
                self._runner = EventLoopRunner(name="repro-sync-adapter")
            runner = self._runner
        return runner.run(coro)

    def query(self, query: Query) -> QueryResult:
        return self._run(self._endpoint.aquery(query))

    def _batch_query(
        self, queries: Sequence[Query]
    ) -> tuple[QueryResult, ...]:
        return self._run(self._endpoint.abatch_query(list(queries)))

    def close(self) -> None:
        with self._runner_lock:
            runner, self._runner = self._runner, None
        if runner is not None:
            runner.close()
        close = getattr(self._endpoint, "close", None)
        if close is not None:
            outcome = close()
            if isinstance(outcome, Awaitable):  # async close coroutines
                EventLoopRunner(name="repro-close").run(outcome)  # pragma: no cover

    def __enter__(self) -> "SyncEndpointAdapter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def as_async_endpoint(endpoint) -> "AsyncSearchEndpoint":
    """``endpoint`` itself if it already speaks async, adapted otherwise."""
    if hasattr(endpoint, "aquery"):
        return endpoint
    return AsyncEndpointAdapter(endpoint)


def as_sync_endpoint(endpoint) -> "SearchEndpoint":
    """``endpoint`` itself if it already blocks, adapted otherwise."""
    if hasattr(endpoint, "query"):
        return endpoint
    return SyncEndpointAdapter(endpoint)


__all__ = [
    "AsyncBatchSearchEndpoint",
    "AsyncEndpointAdapter",
    "AsyncSearchEndpoint",
    "BatchSearchEndpoint",
    "EventLoopRunner",
    "SearchEndpoint",
    "SyncEndpointAdapter",
    "as_async_endpoint",
    "as_sync_endpoint",
]
