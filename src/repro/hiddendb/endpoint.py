"""The :class:`SearchEndpoint` protocol -- the algorithms' data-access seam.

Every discovery algorithm in :mod:`repro.core` touches the hidden database
through exactly four members: the public ``schema`` of the search form, the
top-``k`` output limit, the ``query()`` call and the ``queries_issued``
counter (the paper's sole cost metric).  This protocol names that surface so
alternative backends can stand in for the in-process simulator:

* :class:`~repro.hiddendb.interface.TopKInterface` -- the canonical
  in-process implementation over a :class:`~repro.hiddendb.table.Table`;
* :class:`~repro.service.client.RemoteTopKInterface` -- the same surface
  spoken over HTTP against a :mod:`repro.service.server`, with retry/backoff
  and an optional client-side query cache.

The :class:`~repro.core.base.DiscoverySession` and the
:class:`~repro.core.facade.Discoverer` facade are typed against this
protocol, so any conforming object -- including third-party adapters over
real web search forms -- plugs into every registered algorithm unchanged.

Implementations must preserve the paper's access-model contract:

* ``query()`` answers a conjunctive :class:`~repro.hiddendb.query.Query`
  with at most ``k`` tuples under a domination-consistent ranking;
* queries the interface cannot express raise
  :class:`~repro.hiddendb.errors.UnsupportedQueryError`;
* an exhausted query allowance raises
  :class:`~repro.hiddendb.errors.QueryBudgetExceeded` *without* charging
  the rejected query;
* ``queries_issued`` is monotone and counts exactly the billable queries
  (a caching backend that answers from its cache must not advance it).

An endpoint may additionally offer the **optional** ``batch_query()``
member (:class:`BatchSearchEndpoint`): several independent queries
answered in one call -- billed, validated and fault-injected *per item*,
but paying transport overhead (one HTTP round trip against the networked
service) only once.  The execution engine's
:class:`~repro.core.engine.PipelinedStrategy` discovers the member by
duck-typing and packs frontier waves into batches; endpoints without it
are served with per-query dispatch.  Endpoints that implement
``batch_query`` (or that are driven with ``workers > 1``) must tolerate
concurrent ``query()`` calls from multiple threads.
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

from .attributes import Schema
from .interface import QueryResult
from .query import Query


@runtime_checkable
class SearchEndpoint(Protocol):
    """Structural type of a top-k hidden-database search endpoint."""

    @property
    def schema(self) -> Schema:
        """The (public) schema of the search form."""
        ...

    @property
    def k(self) -> int:
        """Maximum number of tuples returned per query."""
        ...

    @property
    def queries_issued(self) -> int:
        """Billable queries issued so far -- the paper's cost metric."""
        ...

    def query(self, query: Query) -> QueryResult:
        """Issue one conjunctive query and return its top-k answer."""
        ...


@runtime_checkable
class BatchSearchEndpoint(SearchEndpoint, Protocol):
    """A search endpoint that also answers batches in one round trip."""

    def batch_query(self, queries: Sequence[Query]) -> tuple[QueryResult, ...]:
        """Answer several independent queries in one call.

        Semantically equivalent to ``tuple(self.query(q) for q in
        queries)`` -- per-item billing, validation and failure mapping --
        but implementations amortise transport overhead across the batch.
        The first terminal per-item failure (exhausted budget, unsupported
        query) is raised with every answer actually obtained attached as
        ``exc.partial_results``: a tuple aligned with the batch (or a
        prefix of it) whose ``None`` holes mark exactly the items that
        were neither answered nor billed.  Callers never lose answers they
        paid for.
        """
        ...


__all__ = ["BatchSearchEndpoint", "SearchEndpoint"]
