"""Conjunctive query model for top-k hidden-database interfaces.

A query is a conjunction of per-attribute predicates.  Every range predicate
over the integer preference domain normalises to an inclusive interval
``[lo, hi]``:

=============================  =======================
paper predicate                normalised interval
=============================  =======================
``A < v``                      ``[0, v - 1]``
``A <= v``                     ``[0, v]``
``A = v``                      ``[v, v]``
``A > v``                      ``[v + 1, max]``
``A >= v``                     ``[v, max]``
``v1 <= A <= v2``              ``[v1, v2]``
=============================  =======================

The interval form makes interface validation trivial (Section 2.2 of the
paper): an **SQ** attribute accepts only intervals anchored at the best value
(``lo == 0``) or point intervals, a **PQ** attribute accepts only point
intervals, and an **RQ** attribute accepts any interval.

Queries are immutable; the refinement helpers (:meth:`Query.and_upper`,
:meth:`Query.and_lower`, :meth:`Query.and_point`) return new queries, which
lets the discovery algorithms share query prefixes structurally while walking
their divide-and-conquer trees.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence, TYPE_CHECKING

from .attributes import InterfaceKind, Schema
from .errors import UnsupportedQueryError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .table import Row


@dataclass(frozen=True)
class Interval:
    """An inclusive integer interval ``[lo, hi]`` over a preference domain."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    @property
    def is_point(self) -> bool:
        """Whether the interval pins a single value (an equality predicate)."""
        return self.lo == self.hi

    @property
    def width(self) -> int:
        """Number of domain values covered."""
        return self.hi - self.lo + 1

    def contains(self, value: int) -> bool:
        """Whether ``value`` lies inside the interval."""
        return self.lo <= value <= self.hi

    def intersect(self, other: "Interval") -> "Interval | None":
        """Intersection with ``other``, or ``None`` when disjoint."""
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi:
            return None
        return Interval(lo, hi)

    def __repr__(self) -> str:
        if self.is_point:
            return f"={self.lo}"
        return f"[{self.lo},{self.hi}]"


class Query:
    """A conjunctive query over a hidden database.

    ``ranges`` maps ranking-attribute index to an :class:`Interval`;
    attributes absent from the mapping are unconstrained.  ``filters`` maps
    filtering-attribute name to a required value.

    The empty query is the paper's ``SELECT * FROM D``.
    """

    __slots__ = ("_ranges", "_filters", "_key", "_canonical", "_fingerprint")

    def __init__(
        self,
        ranges: Mapping[int, Interval] | None = None,
        filters: Mapping[str, int] | None = None,
    ) -> None:
        self._ranges: dict[int, Interval] = dict(ranges or {})
        self._filters: dict[str, int] = dict(filters or {})
        self._key = (
            tuple(sorted(self._ranges.items(), key=lambda kv: kv[0])),
            tuple(sorted(self._filters.items())),
        )
        self._canonical: str | None = None  # canonical_key(), lazily built
        self._fingerprint: str | None = None  # query_fingerprint(), ditto

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def select_all(cls) -> "Query":
        """The unconstrained ``SELECT * FROM D`` query."""
        return cls()

    @classmethod
    def from_point(
        cls,
        values: Mapping[int, int],
        filters: Mapping[str, int] | None = None,
    ) -> "Query":
        """Build a query with equality predicates on the given attributes."""
        return cls(
            {index: Interval(v, v) for index, v in values.items()}, filters
        )

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def ranges(self) -> Mapping[int, Interval]:
        """Read-only view of the per-attribute intervals."""
        return dict(self._ranges)

    @property
    def filters(self) -> Mapping[str, int]:
        """Read-only view of the filtering-attribute equality predicates."""
        return dict(self._filters)

    @property
    def constrained_attributes(self) -> tuple[int, ...]:
        """Indices of ranking attributes with a predicate, sorted."""
        return tuple(sorted(self._ranges))

    @property
    def num_predicates(self) -> int:
        """Number of conjunctive predicates (range + filter)."""
        return len(self._ranges) + len(self._filters)

    def interval(self, index: int, domain_size: int) -> Interval:
        """Effective interval on attribute ``index`` (full domain if absent)."""
        got = self._ranges.get(index)
        if got is not None:
            return got
        return Interval(0, domain_size - 1)

    # ------------------------------------------------------------------
    # refinement (all return new queries; ``None`` when unsatisfiable)
    # ------------------------------------------------------------------
    def _refine(self, index: int, interval: Interval) -> "Query | None":
        current = self._ranges.get(index)
        if current is not None:
            merged = current.intersect(interval)
            if merged is None:
                return None
            interval = merged
        ranges = dict(self._ranges)
        ranges[index] = interval
        return Query(ranges, self._filters)

    def and_upper(self, index: int, hi: int) -> "Query | None":
        """Append ``A_index <= hi`` (``A < hi + 1``); ``None`` if empty."""
        if hi < 0:
            return None
        return self._refine(index, Interval(0, hi))

    def and_lower(self, index: int, lo: int, domain_size: int) -> "Query | None":
        """Append ``A_index >= lo``; ``None`` if empty."""
        if lo > domain_size - 1:
            return None
        return self._refine(index, Interval(max(lo, 0), domain_size - 1))

    def and_point(self, index: int, value: int) -> "Query | None":
        """Append ``A_index = value``; ``None`` if contradictory."""
        return self._refine(index, Interval(value, value))

    def and_filter(self, name: str, value: int) -> "Query":
        """Append an equality predicate on a filtering attribute."""
        filters = dict(self._filters)
        filters[name] = value
        return Query(self._ranges, filters)

    def merge(self, other: "Query") -> "Query | None":
        """Conjunction of two queries; ``None`` when unsatisfiable."""
        merged: "Query | None" = self
        for index, interval in other._ranges.items():
            if merged is None:
                return None
            merged = merged._refine(index, interval)
        if merged is None:
            return None
        filters = dict(merged._filters)
        for name, value in other._filters.items():
            if name in filters and filters[name] != value:
                return None
            filters[name] = value
        return Query(merged._ranges, filters)

    # ------------------------------------------------------------------
    # semantics
    # ------------------------------------------------------------------
    def matches_values(self, values: Sequence[int]) -> bool:
        """Whether a ranking-value vector satisfies all range predicates."""
        for index, interval in self._ranges.items():
            if not interval.contains(values[index]):
                return False
        return True

    def matches_row(self, row: "Row") -> bool:
        """Whether a row satisfies the range predicates (filters ignored)."""
        return self.matches_values(row.values)

    def covers(self, other: "Query") -> bool:
        """Whether every value combination matching ``other`` matches ``self``.

        Used by the PQ plane-pruning rules, which look for previously issued
        queries *containing* a 2-D subspace.  Filter predicates must agree.
        """
        for name, value in self._filters.items():
            if other._filters.get(name) != value:
                return False
        for index, interval in self._ranges.items():
            other_interval = other._ranges.get(index)
            if other_interval is None:
                return False
            if other_interval.lo < interval.lo or other_interval.hi > interval.hi:
                return False
        return True

    def validate(self, schema: Schema) -> None:
        """Check this query is expressible through ``schema``'s interface.

        Raises
        ------
        UnsupportedQueryError
            If any predicate is not supported by the attribute's interface
            kind (Section 2.2 taxonomy).
        """
        ranking = schema.ranking_attributes
        for index, interval in self._ranges.items():
            if not 0 <= index < len(ranking):
                raise UnsupportedQueryError(
                    f"no ranking attribute at index {index}"
                )
            attribute = ranking[index]
            if interval.hi > attribute.max_value or interval.lo < 0:
                raise UnsupportedQueryError(
                    f"interval {interval} outside domain of {attribute.name!r}"
                )
            kind = attribute.kind
            if kind is InterfaceKind.RQ:
                continue
            if kind is InterfaceKind.SQ:
                if interval.lo != 0 and not interval.is_point:
                    raise UnsupportedQueryError(
                        f"{attribute.name!r} is one-ended (SQ): lower bound "
                        f"{interval} not supported"
                    )
            elif kind is InterfaceKind.PQ:
                if not interval.is_point and interval.width != attribute.domain_size:
                    raise UnsupportedQueryError(
                        f"{attribute.name!r} is point-predicate (PQ): range "
                        f"{interval} not supported"
                    )
        for name in self._filters:
            attribute = schema[name]
            if attribute.is_ranking:
                raise UnsupportedQueryError(
                    f"{name!r} is a ranking attribute; use a range predicate"
                )

    # ------------------------------------------------------------------
    # canonical identity
    # ------------------------------------------------------------------
    def canonical_key(self) -> str:
        """The canonical string identity of this query.

        Two queries with the same predicates produce the same key no
        matter how they were built: attribute order, ``numpy`` integer
        scalars, integral floats and tuple-vs-list inputs all normalise
        away.  This is the *one* key scheme shared by every layer that
        identifies queries -- the execution engine's dedup memo, the
        remote client's LRU cache, the crawl store's query ledger and the
        billing-safe ``X-Request-Id`` replay ids -- so those layers can
        never disagree about whether two queries are the same.

        Built once per instance (it sits on the per-query hot path: memo
        lookups, ledger gets and puts all key on it).
        """
        if self._canonical is None:
            parts = [
                f"r{int(index)}:{int(interval.lo)}-{int(interval.hi)}"
                for index, interval in sorted(self._ranges.items())
            ]
            parts.extend(
                f"f{name}={int(value)}"
                for name, value in sorted(self._filters.items())
            )
            self._canonical = "&".join(parts) if parts else "*"
        return self._canonical

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Query):
            return NotImplemented
        return self._key == other._key

    def __hash__(self) -> int:
        return hash(self._key)

    def __repr__(self) -> str:
        parts = [f"A{index}{interval}" for index, interval in sorted(self._ranges.items())]
        parts.extend(f"{name}={value}" for name, value in sorted(self._filters.items()))
        if not parts:
            return "Query(SELECT *)"
        return "Query(" + " & ".join(parts) + ")"


def query_key(query: Query) -> str:
    """Canonical string identity of ``query`` (see :meth:`Query.canonical_key`)."""
    return query.canonical_key()


def query_fingerprint(query: Query) -> str:
    """Short stable hex digest of a query's canonical key.

    Used where the key must be fixed-width and transport-safe: the
    deterministic component of ``X-Request-Id`` replay ids (so a crawl
    resumed after a crash re-presents the id of an already-billed query
    and gets its answer replayed for free) and compact ledger diagnostics.

    Cached per instance: replay ids and trace spans both ask for it on
    the per-query hot path.
    """
    if query._fingerprint is None:
        query._fingerprint = hashlib.sha1(
            query.canonical_key().encode("utf-8")
        ).hexdigest()[:20]
    return query._fingerprint


def predicates_from_strings(
    schema: Schema, clauses: Iterable[str]
) -> Query:
    """Parse simple ``"name op value"`` clauses into a :class:`Query`.

    Supports ``<``, ``<=``, ``=``, ``>=``, ``>`` on ranking attributes and
    ``=`` on filtering attributes; intended for examples and tests, not for
    performance-critical paths.
    """
    query = Query.select_all()
    for clause in clauses:
        tokens = clause.split()
        if len(tokens) != 3:
            raise ValueError(f"cannot parse predicate {clause!r}")
        name, op, raw_value = tokens
        value = int(raw_value)
        attribute = schema[name]
        if not attribute.is_ranking:
            if op != "=":
                raise ValueError(f"filtering attribute {name!r} supports '=' only")
            query = query.and_filter(name, value)
            continue
        index = schema.ranking_index(name)
        refined: Query | None
        if op == "<":
            refined = query.and_upper(index, value - 1)
        elif op == "<=":
            refined = query.and_upper(index, value)
        elif op == "=":
            refined = query.and_point(index, value)
        elif op == ">=":
            refined = query.and_lower(index, value, attribute.domain_size)
        elif op == ">":
            refined = query.and_lower(index, value + 1, attribute.domain_size)
        else:
            raise ValueError(f"unknown operator {op!r} in {clause!r}")
        if refined is None:
            raise ValueError(f"predicate {clause!r} makes the query empty")
        query = refined
    return query
