"""Figure 23: live-style skyline discovery over Google Flights instances.

50 random route/date searches through the QPX-like interface (SQ on stops,
price and connection time; RQ on departure time), price-ascending default
ranking.  The paper reports 4-11 skyline flights per instance and complete
discovery within the 50-queries-per-day free quota even at k = 1.

The output is the average cumulative query cost at each discovery index,
averaged over the instances that reach that index -- the exact series the
paper plots.
"""

from __future__ import annotations

from ..datagen.gflights import DAILY_QUERY_LIMIT, flight_instances
from ..hiddendb.ranking import LinearRanker
from .common import ground_truth_values, make_interface, run_discovery
from .reporting import print_experiment


def run(
    instances: int = 50,
    k: int = 1,
    seed: int = 0,
) -> list[dict]:
    """Average cost-per-discovery rows across the instances."""
    per_index: dict[int, list[int]] = {}
    sizes = []
    over_quota = 0
    for table in flight_instances(instances, seed=seed):
        ranker = LinearRanker.single_attribute(1, table.schema.m)  # price
        result = run_discovery(make_interface(table, k=k, ranker=ranker))
        expected = ground_truth_values(table)
        if result.skyline_values != expected:
            raise AssertionError("discovery incomplete on a flight instance")
        sizes.append(len(expected))
        if result.total_cost > DAILY_QUERY_LIMIT:
            over_quota += 1
        for index in range(1, len(result.trace) + 1):
            per_index.setdefault(index, []).append(
                result.cost_of_discovery(index)
            )
    rows = [
        {
            "discovery": index,
            "instances": len(costs),
            "avg_cost": round(sum(costs) / len(costs), 1),
        }
        for index, costs in sorted(per_index.items())
    ]
    rows.append(
        {
            "discovery": "summary",
            "instances": instances,
            "avg_cost": f"|S| range {min(sizes)}-{max(sizes)}, "
            f"{over_quota} instances over the {DAILY_QUERY_LIMIT}-query quota",
        }
    )
    return rows


def main() -> None:
    print_experiment("Figure 23: Google Flights (average cost per discovery)", run())


if __name__ == "__main__":
    main()
