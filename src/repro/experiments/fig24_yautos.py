"""Figure 24: live-style skyline discovery over Yahoo! Autos listings.

Price / mileage / year through two-ended ranges, price-ascending default
ranking, k = 50.  The paper discovered all 1,601 skyline cars at under 2
queries per tuple while BASELINE was cut off at 10,000 queries before
finishing its crawl.
"""

from __future__ import annotations

from ..datagen.autos import PRICE_ATTRIBUTE, autos_table
from ..hiddendb.ranking import LinearRanker
from .common import (
    engine_summary,
    ground_truth_values,
    make_interface,
    run_discovery,
)
from .reporting import print_experiment

BASELINE_CUTOFF = 10_000


def run(
    n: int = 125_149,
    k: int = 50,
    seed: int = 0,
    checkpoints: tuple[float, ...] = (0.25, 0.5, 0.75, 1.0),
    baseline_cutoff: int = BASELINE_CUTOFF,
) -> list[dict]:
    """Discovery-progress rows: query cost per skyline fraction, per method."""
    table = autos_table(n, seed=seed)
    ranker = LinearRanker.single_attribute(PRICE_ATTRIBUTE, table.schema.m)
    expected = ground_truth_values(table)

    mq = run_discovery(make_interface(table, k=k, ranker=ranker))
    if mq.skyline_values != expected:
        raise AssertionError("discovery incomplete on the autos listings")

    budgeted = make_interface(table, k=k, ranker=ranker, budget=baseline_cutoff)
    base = run_discovery(budgeted, "baseline")
    base_found = len(base.skyline_values & expected)

    size = len(expected)
    rows = []
    for fraction in checkpoints:
        target = max(1, round(size * fraction))
        rows.append(
            {
                "skyline_fraction": fraction,
                "tuples": target,
                "mq_cost": mq.cost_of_discovery(min(target, len(mq.trace))),
                "baseline_cost": (
                    base.total_cost if base_found >= target else
                    f">{baseline_cutoff} (cut off at {base_found})"
                ),
            }
        )
    rows.append(
        {
            "skyline_fraction": "total",
            "tuples": size,
            "mq_cost": mq.total_cost,
            "baseline_cost": f"{base.total_cost} ({base_found}/{size} found)",
            "engine": engine_summary(mq),
        }
    )
    return rows


def main() -> None:
    print_experiment("Figure 24: Yahoo! Autos (MQ vs BASELINE)", run())


if __name__ == "__main__":
    main()
