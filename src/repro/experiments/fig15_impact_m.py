"""Figure 15: impact of the number of attributes m on SQ- and RQ-DB-SKY.

Attribute prefixes of the flights data, m from 2 to 10 in the paper (we run
2..7 by default -- the skyline size, and with it the verification cost,
grows steeply with dimensionality).  Expected shape: cost grows quickly with
m -- largely because |S| itself explodes -- with RQ-DB-SKY consistently
below SQ-DB-SKY, both far under the worst-case bounds.
"""

from __future__ import annotations

from ..core import analysis
from ..datagen.flights import flights_range_table
from ..hiddendb.attributes import InterfaceKind
from .common import (
    engine_summary,
    ground_truth_values,
    make_interface,
    run_discovery,
)
from .reporting import print_experiment

DEFAULT_MS = (2, 3, 4, 5, 6, 7)

#: SQ-DB-SKY cutoff: its cost explodes with dimensionality (the paper's
#: Figure 15 reaches 10^6 queries at m = 10).
DEFAULT_SQ_BUDGET = 200_000


def run(
    ms: tuple[int, ...] = DEFAULT_MS,
    n: int = 20_000,
    k: int = 10,
    seed: int = 0,
    sq_budget: int = DEFAULT_SQ_BUDGET,
) -> list[dict]:
    """Cost rows per attribute count, with the theoretical bounds."""
    rows = []
    for m in ms:
        table = flights_range_table(n, m, seed=seed)
        sq_table = table.with_kinds(
            {a.name: InterfaceKind.SQ for a in table.schema.ranking_attributes}
        )
        expected = ground_truth_values(table)
        size = len(expected)
        sq = run_discovery(make_interface(sq_table, k=k), "sq", budget=sq_budget)
        rq = run_discovery(make_interface(table, k=k), "rq")
        if rq.skyline_values != expected:
            raise AssertionError(f"RQ-DB-SKY incomplete at m={m}")
        if sq.complete and sq.skyline_values != expected:
            raise AssertionError(f"SQ-DB-SKY incomplete at m={m}")
        rows.append(
            {
                "m": m,
                "S": size,
                "sq_cost": (
                    sq.total_cost if sq.complete
                    else f">{sq_budget} ({len(sq.skyline_values)}/{size})"
                ),
                "rq_cost": rq.total_cost,
                "engine": engine_summary(rq),
                "avg_case_bound": round(analysis.average_case_bound(m, size)),
            }
        )
    return rows


def main() -> None:
    print_experiment("Figure 15: impact of m (range predicates)", run())


if __name__ == "__main__":
    main()
