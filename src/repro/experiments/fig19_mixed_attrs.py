"""Figure 19: MQ-DB-SKY cost when varying the numbers of RQ vs PQ attributes.

Two series over the flights data:

* ``varying range``: 1 PQ attribute, 2..5 RQ attributes;
* ``varying point``: 1 RQ attribute, 2..5 PQ attributes.

Expected shape: adding PQ attributes is far more expensive than adding RQ
attributes -- the point phase enumerates value combinations, while the range
phase only deepens the query tree.
"""

from __future__ import annotations

from ..datagen.flights import flights_mixed_table
from .common import ground_truth_values, make_interface, run_discovery
from .reporting import print_experiment


def run(
    totals: tuple[int, ...] = (3, 4, 5, 6),
    n: int = 20_000,
    k: int = 10,
    seed: int = 0,
) -> list[dict]:
    """Cost rows per total attribute count for both series."""
    rows = []
    for total in totals:
        varying_range = _measure(n, total - 1, 1, k, seed)
        varying_point = _measure(n, 1, total - 1, k, seed)
        rows.append(
            {
                "attributes": total,
                "cost_varying_range": varying_range,
                "cost_varying_point": varying_point,
            }
        )
    return rows


def _measure(n: int, num_range: int, num_point: int, k: int, seed: int) -> int:
    table = flights_mixed_table(n, num_range, num_point, seed=seed)
    result = run_discovery(make_interface(table, k=k), "mq")
    expected = ground_truth_values(table)
    if result.skyline_values != expected:
        raise AssertionError(
            f"MQ-DB-SKY incomplete with {num_range} RQ + {num_point} PQ"
        )
    return result.total_cost


def main() -> None:
    print_experiment(
        "Figure 19: varying range vs point predicates (mixed)", run()
    )


if __name__ == "__main__":
    main()
