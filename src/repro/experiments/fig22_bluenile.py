"""Figure 22: live-style skyline discovery over the Blue Nile catalogue.

MQ-DB-SKY (here: all five diamond attributes are two-ended ranges, so the
algorithm reduces to RQ-DB-SKY) against BASELINE, under the site's
price-ascending default ranking with k = 50.  The paper discovered all
2,149 skyline diamonds at ~3.5 queries per tuple, while BASELINE was cut
off at 10,000 queries with barely half the skyline retrieved.

The output is the discovery curve: cumulative query cost when each fraction
of the skyline has been retrieved, for both methods.  BASELINE runs under
the same 10,000-query budget the paper imposed.
"""

from __future__ import annotations

from ..datagen.diamonds import PRICE_ATTRIBUTE, diamonds_table
from ..hiddendb.errors import QueryBudgetExceeded
from ..hiddendb.ranking import LinearRanker
from .common import (
    engine_summary,
    ground_truth_values,
    make_interface,
    run_discovery,
)
from .reporting import print_experiment

BASELINE_CUTOFF = 10_000


def run(
    n: int = 209_666,
    k: int = 50,
    seed: int = 0,
    checkpoints: tuple[float, ...] = (0.25, 0.5, 0.75, 1.0),
    baseline_cutoff: int = BASELINE_CUTOFF,
) -> list[dict]:
    """Discovery-progress rows: query cost per skyline fraction, per method."""
    table = diamonds_table(n, seed=seed)
    ranker = LinearRanker.single_attribute(PRICE_ATTRIBUTE, table.schema.m)
    expected = ground_truth_values(table)

    mq = run_discovery(make_interface(table, k=k, ranker=ranker))
    if mq.skyline_values != expected:
        raise AssertionError("discovery incomplete on the diamond catalogue")

    budgeted = make_interface(table, k=k, ranker=ranker, budget=baseline_cutoff)
    try:
        base = run_discovery(budgeted, "baseline")
    except QueryBudgetExceeded:  # pragma: no cover - guard handles it
        raise
    base_found = len(base.skyline_values & expected)

    size = len(expected)
    rows = []
    for fraction in checkpoints:
        target = max(1, round(size * fraction))
        rows.append(
            {
                "skyline_fraction": fraction,
                "tuples": target,
                "mq_cost": mq.cost_of_discovery(min(target, len(mq.trace))),
                "baseline_cost": (
                    base.total_cost if base_found >= target else
                    f">{baseline_cutoff} (cut off at {base_found})"
                ),
            }
        )
    rows.append(
        {
            "skyline_fraction": "total",
            "tuples": size,
            "mq_cost": mq.total_cost,
            "baseline_cost": f"{base.total_cost} ({base_found}/{size} found)",
            "engine": engine_summary(mq),
        }
    )
    return rows


def main() -> None:
    print_experiment("Figure 22: Blue Nile diamonds (MQ vs BASELINE)", run())


if __name__ == "__main__":
    main()
