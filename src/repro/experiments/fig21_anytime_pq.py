"""Figure 21: the anytime property of PQ-DB-SKY.

Traces the cumulative query cost at which each successive skyline tuple is
discovered over 4 point-predicate attributes of the flights data.  Expected
shape: mostly steady progress with occasional plateaus -- stretches of
queries "wasted" crawling planes that turn out to hold no skyline tuple
(the paper highlights such a peak between its 8th and 9th discoveries).
"""

from __future__ import annotations

from ..datagen.flights import flights_pq_table
from .common import run_pq
from .reporting import print_experiment


def run(
    n: int = 100_000,
    m: int = 4,
    k: int = 10,
    seed: int = 0,
) -> list[dict]:
    """One row per discovery index with its cumulative query cost."""
    table = flights_pq_table(n, m, seed=seed)
    result = run_pq(table, k=k)
    return [
        {
            "discovery": index,
            "cost": result.cost_of_discovery(index),
        }
        for index in range(1, len(result.trace) + 1)
    ]


def main() -> None:
    print_experiment("Figure 21: anytime property of PQ-DB-SKY", run())


if __name__ == "__main__":
    main()
