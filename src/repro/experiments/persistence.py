"""Archive experiment results as JSON.

A full-scale figure run can take minutes; archiving its rows lets the
numbers in EXPERIMENTS.md be regenerated, diffed and plotted without
re-running the simulation.  Archives are plain JSON with a small metadata
envelope::

    {"figure": "fig13", "params": {...}, "rows": [...]}
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping, Sequence


def _jsonable(value):
    """Coerce numpy scalars and other simple objects to JSON-safe types."""
    if hasattr(value, "item"):
        return value.item()
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, Mapping):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def save_rows(
    path: str | Path,
    figure: str,
    rows: Sequence[Mapping],
    params: Mapping | None = None,
) -> Path:
    """Write one experiment's rows (plus parameters) to ``path``."""
    path = Path(path)
    payload = {
        "figure": figure,
        "params": _jsonable(params or {}),
        "rows": [_jsonable(row) for row in rows],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_rows(path: str | Path) -> tuple[str, dict, list[dict]]:
    """Read an archive back as ``(figure, params, rows)``."""
    payload = json.loads(Path(path).read_text())
    for key in ("figure", "params", "rows"):
        if key not in payload:
            raise ValueError(f"{path}: not an experiment archive (no {key!r})")
    return payload["figure"], payload["params"], payload["rows"]


def run_and_save(
    figure_module, path: str | Path, **params
) -> list[dict]:
    """Run a figure module's ``run(**params)`` and archive the result."""
    rows = figure_module.run(**params)
    name = figure_module.__name__.rsplit(".", 1)[-1]
    save_rows(path, name, rows, params)
    return rows
