"""Experiment harness: one module per evaluation figure of the paper.

Each module exposes ``run(...) -> list[dict]`` (structured series points)
and a ``main()`` printing the series as an aligned table.  Run them all
with ``python -m repro.experiments`` or individually, e.g.::

    python -m repro.experiments.fig13_impact_k

The per-experiment index mapping figures to modules lives in DESIGN.md;
paper-vs-measured numbers are recorded in EXPERIMENTS.md.
"""

from . import (
    fig04_analysis,
    fig06_sq_vs_rq,
    fig13_impact_k,
    fig14_impact_n,
    fig15_impact_m,
    fig16_pq_n,
    fig17_pq_domain,
    fig18_mixed_n,
    fig19_mixed_attrs,
    fig20_anytime_range,
    fig21_anytime_pq,
    fig22_bluenile,
    fig23_gflights,
    fig24_yautos,
)

ALL_FIGURES = {
    "fig04": fig04_analysis,
    "fig06": fig06_sq_vs_rq,
    "fig13": fig13_impact_k,
    "fig14": fig14_impact_n,
    "fig15": fig15_impact_m,
    "fig16": fig16_pq_n,
    "fig17": fig17_pq_domain,
    "fig18": fig18_mixed_n,
    "fig19": fig19_mixed_attrs,
    "fig20": fig20_anytime_range,
    "fig21": fig21_anytime_pq,
    "fig22": fig22_bluenile,
    "fig23": fig23_gflights,
    "fig24": fig24_yautos,
}

__all__ = ["ALL_FIGURES"] + [module.__name__.split(".")[-1] for module in ALL_FIGURES.values()]
