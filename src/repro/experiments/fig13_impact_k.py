"""Figure 13: impact of the interface's top-k on RQ-DB-SKY vs BASELINE.

DOT-like flights data through a two-ended range interface; k sweeps 1..50.
Both methods get cheaper with larger k, but RQ-DB-SKY stays orders of
magnitude below the crawl-everything BASELINE at every k.
"""

from __future__ import annotations

from ..datagen.flights import flights_range_table
from .common import (
    engine_summary,
    ground_truth_values,
    make_interface,
    run_discovery,
)
from .reporting import print_experiment

DEFAULT_KS = (1, 10, 20, 30, 40, 50)


def run(
    n: int = 20_000,
    m: int = 5,
    ks: tuple[int, ...] = DEFAULT_KS,
    seed: int = 0,
    include_baseline: bool = True,
) -> list[dict]:
    """Cost rows for RQ-DB-SKY and BASELINE at each k."""
    table = flights_range_table(n, m, seed=seed)
    expected = ground_truth_values(table)
    rows = []
    for k in ks:
        rq = run_discovery(make_interface(table, k=k), "rq")
        if rq.skyline_values != expected:
            raise AssertionError(f"RQ-DB-SKY incomplete at k={k}")
        row = {
            "k": k,
            "S": len(expected),
            "rq_cost": rq.total_cost,
            "engine": engine_summary(rq),
        }
        if include_baseline:
            base = run_discovery(make_interface(table, k=k), "baseline")
            if base.skyline_values != expected:
                raise AssertionError(f"BASELINE incomplete at k={k}")
            row["baseline_cost"] = base.total_cost
            row["speedup"] = round(base.total_cost / max(rq.total_cost, 1), 1)
        rows.append(row)
    return rows


def main() -> None:
    print_experiment("Figure 13: impact of k (RQ-DB-SKY vs BASELINE)", run())


if __name__ == "__main__":
    main()
