"""Figure 17: PQ-DB-SKY query cost vs attribute domain size.

The paper removes all but ``v`` values of each PQ domain along with their
associated tuples, then samples 100,000 of the remaining tuples.  Our group
attributes include preference-opposed pairs (long distance vs short air
time), for which joint value-removal leaves almost no tuples, so we hold
the tuples fixed and re-discretise every attribute into ``v``
equal-frequency buckets instead -- the same knob (domain size) applied to
the same data, with every domain value occupied, as the paper's analysis
assumes.  Expected shape: cost grows with the domain size, but far slower
than the data space (which grows as ``v^m``).
"""

from __future__ import annotations

from ..datagen import rediscretize_domains
from ..datagen.flights import flights_pq_table
from .common import run_pq
from .reporting import print_experiment

DEFAULT_DOMAINS = (5, 7, 9, 11, 13, 15)


def run(
    domains: tuple[int, ...] = DEFAULT_DOMAINS,
    n: int = 100_000,
    m: int = 4,
    sample: int = 50_000,
    k: int = 10,
    seed: int = 0,
) -> list[dict]:
    """Cost rows per re-discretised domain size."""
    base = flights_pq_table(n, m, seed=seed)
    rows = []
    for domain in domains:
        table = rediscretize_domains(base, domain)
        if table.n > sample:
            table = table.subsample(sample, seed=seed)
        result = run_pq(table, k=k)
        rows.append(
            {
                "domain": domain,
                "n": table.n,
                "space": domain ** m,
                "cost": result.total_cost,
            }
        )
    return rows


def main() -> None:
    print_experiment("Figure 17: impact of domain size (point predicates)", run())


if __name__ == "__main__":
    main()
