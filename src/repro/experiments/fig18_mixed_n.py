"""Figure 18: MQ-DB-SKY query cost vs database size (3 RQ + 2 PQ attributes).

Expected shape: like every other algorithm in the paper, the cost of mixed
discovery is driven by the skyline, not by the raw tuple count -- the curve
stays nearly flat across a 5x growth in n.
"""

from __future__ import annotations

from ..datagen.flights import flights_mixed_table
from .common import (
    engine_summary,
    ground_truth_values,
    make_interface,
    run_discovery,
)
from .reporting import print_experiment

DEFAULT_NS = (20_000, 40_000, 60_000, 80_000, 100_000)


def run(
    ns: tuple[int, ...] = DEFAULT_NS,
    num_range: int = 3,
    num_point: int = 2,
    k: int = 10,
    seed: int = 0,
) -> list[dict]:
    """Cost rows per database size."""
    rows = []
    for n in ns:
        table = flights_mixed_table(n, num_range, num_point, seed=seed)
        result = run_discovery(make_interface(table, k=k), "mq")
        expected = ground_truth_values(table)
        if result.skyline_values != expected:
            raise AssertionError(f"MQ-DB-SKY incomplete at n={n}")
        rows.append(
            {
                "n": n,
                "S": len(expected),
                "cost": result.total_cost,
                "engine": engine_summary(result),
            }
        )
    return rows


def main() -> None:
    print_experiment("Figure 18: impact of n (mixed predicates)", run())


if __name__ == "__main__":
    main()
