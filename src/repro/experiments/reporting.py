"""Plain-text reporting helpers shared by all experiment front-ends.

Each experiment module exposes ``run(...) -> list[dict]`` returning one dict
per series point, plus a ``main()`` that prints the rows as an aligned table
-- the textual equivalent of the paper's figure.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


def format_table(rows: Sequence[Mapping[str, object]]) -> str:
    """Render result rows as an aligned monospace table."""
    if not rows:
        return "(no rows)"
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    rendered = [[_render(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(column), *(len(line[i]) for line in rendered))
        for i, column in enumerate(columns)
    ]
    header = "  ".join(column.ljust(widths[i]) for i, column in enumerate(columns))
    separator = "  ".join("-" * width for width in widths)
    body = "\n".join(
        "  ".join(value.rjust(widths[i]) for i, value in enumerate(line))
        for line in rendered
    )
    return "\n".join([header, separator, body])


def _render(value: object) -> str:
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.2f}"
    return str(value)


def print_experiment(title: str, rows: Sequence[Mapping[str, object]]) -> None:
    """Print an experiment header followed by its result table."""
    print(f"== {title} ==")
    print(format_table(rows))
    print()


def format_engine_stats(stats) -> str:
    """One-line rendering of a result's :class:`~repro.core.engine.EngineStats`.

    Used by ``repro discover --verbose`` and available to experiment
    runners that want to report execution-engine behaviour (dispatch
    strategy, dedup savings, batching) next to their query counts.
    """
    if stats is None:
        return "engine     : (no engine statistics recorded)"
    line = (
        f"engine     : {stats.strategy} (workers={stats.workers}) "
        f"issued={stats.issued} deduped={stats.deduped}"
    )
    if stats.deduped:
        line += f" ({stats.dedup_rate:.0%} of logical queries free)"
    if stats.ledger_hits:
        line += (
            f" ledger={stats.ledger_hits} "
            f"({stats.ledger_rate:.0%} pre-paid by earlier runs)"
        )
    if stats.batches:
        line += f" batched={stats.batched} in {stats.batches} round trips"
    line += f" max-in-flight={stats.max_in_flight}"
    if getattr(stats, "mean_window", 0.0) or getattr(stats, "window_decreases", 0):
        line += (
            f" adaptive(mean-window={stats.mean_window:.1f}"
            f" decreases={stats.window_decreases})"
        )
    if stats.wall_time_s > 0:
        line += (
            f" wall={stats.wall_time_s:.2f}s"
            f" ({stats.queries_per_sec:,.0f} q/s)"
        )
    return line


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean, tolerant of empty input (returns 0)."""
    product = 1.0
    count = 0
    for value in values:
        product *= float(value)
        count += 1
    if count == 0:
        return 0.0
    return product ** (1.0 / count)
