"""Figure 16: PQ-DB-SKY query cost vs database size for 3-D/4-D/5-D data.

Point-predicate (group) attributes of the flights data.  Expected shape:
cost barely moves as n grows from 20K to 100K but rises steeply with the
number of PQ attributes -- the plane enumeration is exponential in m - 2.
"""

from __future__ import annotations

from ..datagen.flights import flights_pq_table
from .common import run_pq
from .reporting import print_experiment

DEFAULT_NS = (20_000, 40_000, 60_000, 80_000, 100_000)


def run(
    ns: tuple[int, ...] = DEFAULT_NS,
    ms: tuple[int, ...] = (3, 4, 5),
    k: int = 10,
    seed: int = 0,
) -> list[dict]:
    """Cost rows per (n, m) combination."""
    rows = []
    for n in ns:
        row: dict = {"n": n}
        for m in ms:
            table = flights_pq_table(n, m, seed=seed)
            result = run_pq(table, k=k)
            row[f"cost_{m}d"] = result.total_cost
        rows.append(row)
    return rows


def main() -> None:
    print_experiment("Figure 16: impact of n (point predicates)", run())


if __name__ == "__main__":
    main()
