"""Figure 20: the anytime property of SQ- and RQ-DB-SKY.

Traces the cumulative query cost at which each successive skyline tuple is
discovered, on flights data with 5 range attributes.  Expected shape: the
two algorithms track each other over the early discoveries (SQ has not yet
re-encountered any skyline tuple), then SQ-DB-SKY falls behind as it starts
paying for repeated returns of already-known tuples.
"""

from __future__ import annotations

from ..datagen.flights import flights_range_table
from ..hiddendb.attributes import InterfaceKind
from .common import run_range_algorithm
from .reporting import print_experiment


def run(
    n: int = 100_000,
    m: int = 5,
    k: int = 10,
    seed: int = 0,
) -> list[dict]:
    """One row per discovery index: cost at that discovery for SQ and RQ."""
    table = flights_range_table(n, m, seed=seed)
    sq_table = table.with_kinds(
        {a.name: InterfaceKind.SQ for a in table.schema.ranking_attributes}
    )
    sq = run_range_algorithm(sq_table, "sq", k=k)
    rq = run_range_algorithm(table, "rq", k=k)
    count = min(len(sq.trace), len(rq.trace))
    return [
        {
            "discovery": index,
            "sq_cost": sq.cost_of_discovery(index),
            "rq_cost": rq.cost_of_discovery(index),
        }
        for index in range(1, count + 1)
    ]


def main() -> None:
    print_experiment("Figure 20: anytime property of SQ and RQ-DB-SKY", run())


if __name__ == "__main__":
    main()
