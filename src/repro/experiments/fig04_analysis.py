"""Figure 4: analytic average-case vs worst-case SQ-DB-SKY cost.

The paper plots, for m = 4 and m = 8 and skyline sizes 1..19, the
average-case expected query cost (Eq. 5) against the worst-case bound
``m * |S|^(m+1)``.  The average-case curve grows orders of magnitude slower.
"""

from __future__ import annotations

from ..core import analysis
from .reporting import print_experiment


def run(ms: tuple[int, ...] = (4, 8), max_s: int = 19) -> list[dict]:
    """Analytic cost rows for every (m, |S|) pair of the figure."""
    rows = []
    for m in ms:
        for s in range(1, max_s + 1, 2):
            rows.append(
                {
                    "m": m,
                    "S": s,
                    "average_cost": float(analysis.expected_cost_closed_form(m, s)),
                    "worst_case": analysis.sq_worst_case_bound(m, s),
                    "eq10_bound": analysis.average_case_bound(m, s),
                }
            )
    return rows


def main() -> None:
    print_experiment(
        "Figure 4: SQ-DB-SKY average-case vs worst-case query cost", run()
    )


if __name__ == "__main__":
    main()
