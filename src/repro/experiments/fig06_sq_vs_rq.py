"""Figure 6: SQ-DB-SKY vs RQ-DB-SKY query cost as the skyline size varies.

The paper fixes n = 2,000 tuples and sweeps the inter-attribute correlation
(positive correlation -> fewer skyline tuples), plotting query cost against
the achieved skyline size for 4-D and 8-D data.  Expected shape: the two
algorithms track each other for small skylines; RQ's early termination wins
by a widening margin as |S| grows.

The paper's wording ("2 Boolean i.i.d. uniform-distribution attributes")
cannot produce the 5..95 skyline sizes its own x-axis shows (with both
Boolean values present the skyline is a single pattern), so we use the
latent-factor correlated integer generator as the sweep -- the quantity the
figure studies, cost as a function of |S|, is preserved.
"""

from __future__ import annotations

from ..datagen.synthetic import correlation_sweep_table
from ..hiddendb.attributes import InterfaceKind
from .common import (
    engine_summary,
    ground_truth_values,
    make_interface,
    run_discovery,
    skyline_count,
)
from .reporting import print_experiment

DEFAULT_RHOS = (0.95, 0.8, 0.5, 0.2, 0.0, -0.3, -0.6, -0.9)

#: SQ-DB-SKY is cut off past this many queries (its worst case for large
#: skylines at high dimensionality is astronomically large -- the paper's
#: own Figure 6(b) reaches 10^10 queries).
DEFAULT_SQ_BUDGET = 300_000


def run(
    ms: tuple[int, ...] = (4, 8),
    n: int = 2000,
    rhos: tuple[float, ...] = DEFAULT_RHOS,
    domain: int = 32,
    k: int = 1,
    seed: int = 0,
    sq_budget: int = DEFAULT_SQ_BUDGET,
) -> list[dict]:
    """Cost rows for both algorithms across the correlation sweep.

    SQ runs are capped at ``sq_budget`` queries; a cut-off run reports the
    number of skyline tuples it had discovered by then (the anytime answer).
    """
    rows = []
    for m in ms:
        for rho in rhos:
            sq_table = correlation_sweep_table(
                n, m, rho, domain=domain, kind=InterfaceKind.SQ, seed=seed
            )
            rq_table = sq_table.with_kinds(
                {a.name: InterfaceKind.RQ for a in sq_table.schema.ranking_attributes}
            )
            expected = ground_truth_values(sq_table)
            sq = run_discovery(
                make_interface(sq_table, k=k), "sq", budget=sq_budget
            )
            rq = run_discovery(make_interface(rq_table, k=k), "rq")
            if rq.skyline_values != expected:
                raise AssertionError(f"RQ incomplete at m={m}, rho={rho}")
            if sq.complete and sq.skyline_values != expected:
                raise AssertionError(f"SQ incomplete at m={m}, rho={rho}")
            rows.append(
                {
                    "m": m,
                    "rho": rho,
                    "S": skyline_count(sq_table),
                    "sq_cost": (
                        sq.total_cost if sq.complete
                        else f">{sq_budget} ({len(sq.skyline_values)}/"
                        f"{len(expected)} found)"
                    ),
                    "rq_cost": rq.total_cost,
                    "engine": engine_summary(rq),
                }
            )
    return rows


def main() -> None:
    print_experiment("Figure 6: SQ vs RQ query cost vs skyline size", run())


if __name__ == "__main__":
    main()
