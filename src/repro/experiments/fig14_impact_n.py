"""Figure 14: impact of the database size n on SQ- and RQ-DB-SKY.

Uniform random subsamples of the flights data, n from 50K to 400K (scaled
down by default for laptop runs).  Expected shape: query cost tracks the
skyline size |S|, not n -- both curves stay nearly flat while n grows 8x,
and RQ-DB-SKY stays below SQ-DB-SKY.
"""

from __future__ import annotations

from ..datagen.flights import flights_range_table
from ..hiddendb.attributes import InterfaceKind
from .common import run_range_algorithm, skyline_count
from .reporting import print_experiment

DEFAULT_NS = (50_000, 100_000, 200_000, 400_000)


def run(
    ns: tuple[int, ...] = DEFAULT_NS,
    m: int = 5,
    k: int = 10,
    seed: int = 0,
) -> list[dict]:
    """Cost and skyline-size rows per database size."""
    rows = []
    for n in ns:
        table = flights_range_table(n, m, seed=seed)
        sq_table = table.with_kinds(
            {a.name: InterfaceKind.SQ for a in table.schema.ranking_attributes}
        )
        sq = run_range_algorithm(sq_table, "sq", k=k)
        rq = run_range_algorithm(table, "rq", k=k)
        rows.append(
            {
                "n": n,
                "S": skyline_count(table),
                "sq_cost": sq.total_cost,
                "rq_cost": rq.total_cost,
            }
        )
    return rows


def main() -> None:
    print_experiment("Figure 14: impact of n (range predicates)", run())


if __name__ == "__main__":
    main()
