"""Run every figure experiment in sequence: ``python -m repro.experiments``.

Accepts figure ids to restrict the run, e.g.::

    python -m repro.experiments fig13 fig22
"""

from __future__ import annotations

import sys
import time

from . import ALL_FIGURES


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    selected = argv or list(ALL_FIGURES)
    unknown = [figure for figure in selected if figure not in ALL_FIGURES]
    if unknown:
        print(f"unknown figures: {unknown}; available: {sorted(ALL_FIGURES)}")
        return 2
    for figure in selected:
        start = time.perf_counter()
        ALL_FIGURES[figure].main()
        print(f"[{figure} finished in {time.perf_counter() - start:.1f}s]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
