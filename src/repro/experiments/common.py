"""Shared plumbing for the figure-reproduction experiments.

All experiment runs route through one module-level
:class:`~repro.core.facade.Discoverer` so the figure modules never hand-roll
algorithm dispatch; they name a registry algorithm (``"sq"``, ``"rq"``,
``"pq"``, ``"baseline"``, ...) or let the facade auto-dispatch.

The *execution substrate* is configurable too: figure runners build their
search endpoints through :func:`make_interface`, and
:func:`configure_experiments` swaps what that returns and how the facade
drains frontiers.  Every figure can therefore reproduce

* **in process** (the default: a :class:`TopKInterface` per table, serial
  execution -- the historical query counts),
* **remotely** (``remote=True``: each table is stood up as an ephemeral
  :class:`~repro.service.HiddenDBServer` and crawled over HTTP),
* **durably/resumably** (``store=...``: every billed answer lands in a
  :class:`~repro.store.CrawlStore` ledger keyed by a content-derived
  endpoint label, so re-running a figure replays it free and a killed
  sweep resumes), and
* **concurrently** (``strategy``/``workers``/``batch_size`` forwarded to
  the execution engine).

Because all strategies preserve billed cost and skyline, the reported
figure numbers are identical in every mode; the engine counters of each
run are exposed through :func:`engine_summary` so runners can record
:class:`~repro.core.engine.EngineStats` next to their query counts.
"""

from __future__ import annotations

import hashlib
from typing import Any

import numpy as np

from ..core import Discoverer, DiscoveryConfig
from ..core.base import DiscoveryResult
from ..hiddendb.interface import TopKInterface
from ..hiddendb.ranking import Ranker
from ..hiddendb.table import Table

#: Default top-k of the simulated search forms in the offline experiments.
DEFAULT_K = 10

#: The facade every experiment runs through (rebound by
#: :func:`configure_experiments`; figure modules must call
#: :func:`run_discovery` rather than capturing this reference).
DISCOVERER = Discoverer()

# Substrate state installed by configure_experiments().
_REMOTE = False
_STORE = None
_OWNS_STORE = False
_SERVERS: dict[str, Any] = {}
_CLIENTS: list[Any] = []


def configure_experiments(
    *,
    remote: bool = False,
    store: Any = None,
    resume: bool = False,
    strategy: str | None = None,
    workers: int = 1,
    batch_size: int = 16,
    dedup: bool | None = None,
    checkpoint_every: int = 32,
) -> None:
    """Reconfigure the substrate every figure runner executes on.

    ``remote=True`` serves each experiment table from an ephemeral
    :class:`~repro.service.HiddenDBServer` (one per distinct
    table/k/ranking, reused across runs) and crawls it over HTTP.
    ``store`` mounts a :class:`~repro.store.CrawlStore` (instance or
    path; a path is opened here and closed by :func:`reset_experiments`)
    so runs are ledgered and -- with ``resume=True`` -- resumable.  The
    remaining knobs configure the execution engine exactly like the
    ``repro discover`` flags of the same names.

    Call :func:`reset_experiments` to restore the plain in-process
    defaults (and stop any ephemeral servers).
    """
    global DISCOVERER, _REMOTE, _STORE, _OWNS_STORE
    reset_experiments()
    if store is not None and not hasattr(store, "register_endpoint"):
        from ..store import CrawlStore

        store = CrawlStore(str(store))
        _OWNS_STORE = True
    _STORE = store
    _REMOTE = bool(remote)
    DISCOVERER = Discoverer(
        DiscoveryConfig(
            strategy=strategy,
            workers=workers,
            batch_size=batch_size,
            dedup=dedup,
            store=store,
            resume=resume,
            checkpoint_every=checkpoint_every,
        )
    )


def reset_experiments() -> None:
    """Restore in-process serial defaults; stop ephemeral servers."""
    global DISCOVERER, _REMOTE, _STORE, _OWNS_STORE
    DISCOVERER = Discoverer()
    _REMOTE = False
    for client in _CLIENTS:
        client.close()
    _CLIENTS.clear()
    for server in _SERVERS.values():
        server.stop()
    _SERVERS.clear()
    if _OWNS_STORE and _STORE is not None:
        _STORE.close()
    _STORE = None
    _OWNS_STORE = False


def _endpoint_label(
    table: Table, ranker: Ranker | None, k: int, budget: int | None
) -> str:
    """Content-derived endpoint identity of one experiment interface.

    Hashes the actual matrix (plus schema, ranking, ``k`` and budget), so
    a crawl-store ledger is shared exactly between runs over identical
    data -- and never between different sweep points of a figure.
    """
    h = hashlib.sha256()
    h.update(np.ascontiguousarray(table.matrix).tobytes())
    h.update(
        repr(
            [
                (a.name, a.domain_size, a.kind.value)
                for a in table.schema.attributes
            ]
        ).encode()
    )
    describe = getattr(ranker, "describe", None)
    h.update(f"|k={k}|budget={budget}|{describe() if describe else ''}".encode())
    return f"exp-{h.hexdigest()[:12]}"


def make_interface(
    table: Table,
    k: int = DEFAULT_K,
    ranker: Ranker | None = None,
    budget: int | None = None,
):
    """The search endpoint a figure runner crawls ``table`` through.

    In-process by default.  After ``configure_experiments(remote=True)``
    the table is served by an ephemeral :class:`HiddenDBServer` (its
    ``budget``, if any, becomes the server's per-key budget) and a
    :class:`RemoteTopKInterface` client is returned instead -- the figure
    then reproduces over the wire with unchanged numbers.  When a crawl
    store is configured, the endpoint is pre-registered under its
    content-derived label so one store can ledger a whole figure sweep.
    """
    label = _endpoint_label(table, ranker, k, budget)
    if _REMOTE:
        from ..service import HiddenDBServer, RemoteTopKInterface

        server = _SERVERS.get(label)
        if server is None:
            server = HiddenDBServer(
                table, ranker, k=k, port=0, key_budget=budget, name=label
            ).start()
            _SERVERS[label] = server
        elif budget is not None:
            # An in-process TopKInterface gets a fresh budget per
            # construction; give a reused budgeted server the same
            # semantics.
            server.reset_billing()
        interface = RemoteTopKInterface(server.url)
        _CLIENTS.append(interface)
    else:
        interface = TopKInterface(
            table, ranker=ranker, k=k, budget=budget, name=label
        )
    if _STORE is not None:
        # attach_store() registers with allow_new=False (refusing ledger
        # mix-ups); a figure sweep legitimately crawls many endpoints, so
        # pre-register each one explicitly.
        _STORE.register_endpoint(
            table.schema,
            k,
            name=label,
            ranking=getattr(interface, "ranking_label", ""),
            allow_new=True,
        )
    return interface


def run_discovery(
    interface,
    algorithm: str | None = None,
    **overrides,
) -> DiscoveryResult:
    """Run one registered algorithm (or auto-dispatch) on ``interface``."""
    return DISCOVERER.run(interface, algorithm, **overrides)


def engine_summary(result) -> str:
    """Compact :class:`EngineStats` cell for figure rows.

    ``<strategy>/w<workers>:<issued>q`` plus ``+Nd`` memo hits and
    ``+Nl`` ledger replays when present -- the execution story of the run
    next to its billed query count.
    """
    stats = getattr(result, "stats", None)
    if stats is None:
        return "-"
    cell = f"{stats.strategy}/w{stats.workers}:{stats.issued}q"
    if stats.deduped:
        cell += f"+{stats.deduped}d"
    if stats.ledger_hits:
        cell += f"+{stats.ledger_hits}l"
    return cell


def ground_truth_values(table: Table) -> frozenset[tuple[int, ...]]:
    """Skyline of ``table`` as a value-vector set (oracle access)."""
    return frozenset(
        tuple(int(v) for v in row) for row in table.matrix[table.skyline_indices()]
    )


def run_range_algorithm(
    table: Table,
    algorithm: str,
    k: int = DEFAULT_K,
    ranker: Ranker | None = None,
    verify: bool = True,
) -> DiscoveryResult:
    """Run ``"sq"`` or ``"rq"`` discovery over ``table`` and optionally check
    the answer against the ground truth."""
    if algorithm not in ("sq", "rq"):
        raise ValueError(f"unknown range algorithm {algorithm!r}")
    result = run_discovery(make_interface(table, k=k, ranker=ranker), algorithm)
    if verify:
        expected = ground_truth_values(table)
        if result.skyline_values != expected:
            raise AssertionError(
                f"{algorithm} returned {len(result.skyline_values)} skyline "
                f"vectors, expected {len(expected)}"
            )
    return result


def run_pq(
    table: Table,
    k: int = DEFAULT_K,
    ranker: Ranker | None = None,
    verify: bool = True,
) -> DiscoveryResult:
    """Run PQ-DB-SKY over ``table`` with optional verification."""
    result = run_discovery(make_interface(table, k=k, ranker=ranker), "pq")
    if verify:
        expected = ground_truth_values(table)
        if result.skyline_values != expected:
            raise AssertionError("PQ-DB-SKY missed part of the skyline")
    return result


def skyline_count(table: Table) -> int:
    """Number of distinct skyline value vectors of ``table``."""
    return len(ground_truth_values(table))


def as_int(value) -> int:
    """Narrow numpy integers for clean report rows."""
    return int(np.asarray(value).item())
