"""Shared plumbing for the figure-reproduction experiments."""

from __future__ import annotations

import numpy as np

from ..core import discover_pq, discover_rq, discover_sq
from ..core.base import DiscoveryResult
from ..hiddendb.attributes import InterfaceKind
from ..hiddendb.interface import TopKInterface
from ..hiddendb.ranking import Ranker
from ..hiddendb.table import Table

#: Default top-k of the simulated search forms in the offline experiments.
DEFAULT_K = 10


def ground_truth_values(table: Table) -> frozenset[tuple[int, ...]]:
    """Skyline of ``table`` as a value-vector set (oracle access)."""
    return frozenset(
        tuple(int(v) for v in row) for row in table.matrix[table.skyline_indices()]
    )


def run_range_algorithm(
    table: Table,
    algorithm: str,
    k: int = DEFAULT_K,
    ranker: Ranker | None = None,
    verify: bool = True,
) -> DiscoveryResult:
    """Run ``"sq"`` or ``"rq"`` discovery over ``table`` and optionally check
    the answer against the ground truth."""
    interface = TopKInterface(table, ranker=ranker, k=k)
    if algorithm == "sq":
        result = discover_sq(interface)
    elif algorithm == "rq":
        kinds = [a.kind for a in table.schema.ranking_attributes]
        two_ended = tuple(
            i for i, kind in enumerate(kinds) if kind is InterfaceKind.RQ
        )
        result = discover_rq(interface, two_ended=two_ended)
    else:
        raise ValueError(f"unknown range algorithm {algorithm!r}")
    if verify:
        expected = ground_truth_values(table)
        if result.skyline_values != expected:
            raise AssertionError(
                f"{algorithm} returned {len(result.skyline_values)} skyline "
                f"vectors, expected {len(expected)}"
            )
    return result


def run_pq(
    table: Table,
    k: int = DEFAULT_K,
    ranker: Ranker | None = None,
    verify: bool = True,
) -> DiscoveryResult:
    """Run PQ-DB-SKY over ``table`` with optional verification."""
    interface = TopKInterface(table, ranker=ranker, k=k)
    result = discover_pq(interface)
    if verify:
        expected = ground_truth_values(table)
        if result.skyline_values != expected:
            raise AssertionError("PQ-DB-SKY missed part of the skyline")
    return result


def skyline_count(table: Table) -> int:
    """Number of distinct skyline value vectors of ``table``."""
    return len(ground_truth_values(table))


def as_int(value) -> int:
    """Narrow numpy integers for clean report rows."""
    return int(np.asarray(value).item())
