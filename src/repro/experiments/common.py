"""Shared plumbing for the figure-reproduction experiments.

All experiment runs route through one module-level
:class:`~repro.core.facade.Discoverer` so the figure modules never hand-roll
algorithm dispatch; they name a registry algorithm (``"sq"``, ``"rq"``,
``"pq"``, ``"baseline"``, ...) or let the facade auto-dispatch.
"""

from __future__ import annotations

import numpy as np

from ..core import Discoverer
from ..core.base import DiscoveryResult
from ..hiddendb.interface import TopKInterface
from ..hiddendb.ranking import Ranker
from ..hiddendb.table import Table

#: Default top-k of the simulated search forms in the offline experiments.
DEFAULT_K = 10

#: The facade every experiment runs through.
DISCOVERER = Discoverer()


def run_discovery(
    interface: TopKInterface,
    algorithm: str | None = None,
    **overrides,
) -> DiscoveryResult:
    """Run one registered algorithm (or auto-dispatch) on ``interface``."""
    return DISCOVERER.run(interface, algorithm, **overrides)


def ground_truth_values(table: Table) -> frozenset[tuple[int, ...]]:
    """Skyline of ``table`` as a value-vector set (oracle access)."""
    return frozenset(
        tuple(int(v) for v in row) for row in table.matrix[table.skyline_indices()]
    )


def run_range_algorithm(
    table: Table,
    algorithm: str,
    k: int = DEFAULT_K,
    ranker: Ranker | None = None,
    verify: bool = True,
) -> DiscoveryResult:
    """Run ``"sq"`` or ``"rq"`` discovery over ``table`` and optionally check
    the answer against the ground truth."""
    if algorithm not in ("sq", "rq"):
        raise ValueError(f"unknown range algorithm {algorithm!r}")
    interface = TopKInterface(table, ranker=ranker, k=k)
    result = DISCOVERER.run(interface, algorithm)
    if verify:
        expected = ground_truth_values(table)
        if result.skyline_values != expected:
            raise AssertionError(
                f"{algorithm} returned {len(result.skyline_values)} skyline "
                f"vectors, expected {len(expected)}"
            )
    return result


def run_pq(
    table: Table,
    k: int = DEFAULT_K,
    ranker: Ranker | None = None,
    verify: bool = True,
) -> DiscoveryResult:
    """Run PQ-DB-SKY over ``table`` with optional verification."""
    interface = TopKInterface(table, ranker=ranker, k=k)
    result = DISCOVERER.run(interface, "pq")
    if verify:
        expected = ground_truth_values(table)
        if result.skyline_values != expected:
            raise AssertionError("PQ-DB-SKY missed part of the skyline")
    return result


def skyline_count(table: Table) -> int:
    """Number of distinct skyline value vectors of ``table``."""
    return len(ground_truth_values(table))


def as_int(value) -> int:
    """Narrow numpy integers for clean report rows."""
    return int(np.asarray(value).item())
