"""repro: skyline discovery over top-k hidden web databases.

A full reproduction of Asudeh, Thirumuruganathan, Zhang and Das,
*"Discovering the Skyline of Web Databases"* (VLDB 2016): the hidden-database
simulator substrate, the SQ- / RQ- / PQ- / MQ-DB-SKY discovery algorithms,
K-skyband extensions, the crawling baseline, synthetic stand-ins for the
paper's datasets, and a benchmark harness regenerating every evaluation
figure.

The public entry point is the :class:`Discoverer` facade over the algorithm
registry.  Typical usage::

    from repro import (
        Attribute, Discoverer, DiscoveryConfig, InterfaceKind, Schema,
        Table, TopKInterface,
    )

    schema = Schema([
        Attribute("price", 1000, InterfaceKind.RQ),
        Attribute("stops", 3, InterfaceKind.PQ),
    ])
    table = Table(schema, values)
    interface = TopKInterface(table, k=10)

    disc = Discoverer(DiscoveryConfig(budget=5000))
    result = disc.run(interface)           # auto-dispatch on the taxonomy
    print(result.algorithm, result.skyline, result.total_cost)

    per_algo = disc.run_all(interface)     # every applicable algorithm
    band = disc.skyband(interface, band=3) # top-3 skyband (§7.2)

Progress hooks stream the anytime curve while a run is still going::

    config = DiscoveryConfig(
        on_query=lambda res: print("issued", res.query),
        on_tuple=lambda entry: print("new tuple at cost", entry.cost),
    )
    Discoverer(config).run(interface)

One-shot runs can use the module-level convenience ``discover(interface)``.
The pre-facade ``discover_sq`` / ``discover_rq`` / ``discover_pq`` /
``discover_pq2d`` / ``discover_mq`` helpers still work but emit
``DeprecationWarning``; new algorithms plug in through
:func:`repro.core.registry.register_algorithm`.

Algorithms access data only through the :class:`SearchEndpoint` protocol, so
backends are swappable: the in-process :class:`TopKInterface` simulator, or
the networked service layer in :mod:`repro.service` -- ``repro serve`` (or
:class:`repro.service.HiddenDBServer`) exposes a table as a JSON top-k
search API with per-API-key budgets and fault injection, and
:class:`repro.service.RemoteTopKInterface` is the resilient HTTP client
(retry/backoff, optional free-of-charge LRU query cache) that drops into
``Discoverer`` unchanged::

    from repro.service import HiddenDBServer, RemoteTopKInterface

    with HiddenDBServer(table, k=10) as server:
        remote = RemoteTopKInterface(server.url, cache_size=1024)
        result = Discoverer().run(remote)

Crawls become *durable* by mounting a :class:`CrawlStore`
(:mod:`repro.store`): every billed answer lands in a persistent query
ledger, progress is checkpointed, and a killed run resumed with
``resume=True`` replays the paid-for prefix instead of re-billing it::

    store = CrawlStore("crawl.db")
    Discoverer(DiscoveryConfig(store=store)).run(remote)       # cold crawl
    Discoverer(DiscoveryConfig(store=store)).run(remote)       # warm: free
    # after a kill -9 / deploy / budget exhaustion:
    Discoverer(DiscoveryConfig(store=store, resume=True)).run(remote)
"""

from .hiddendb import (
    Attribute,
    InterfaceKind,
    Interval,
    LexicographicRanker,
    LinearRanker,
    Query,
    QueryBudgetExceeded,
    QueryResult,
    RandomSkylineRanker,
    Ranker,
    Row,
    Schema,
    SearchEndpoint,
    Table,
    TopKInterface,
    UnsupportedQueryError,
)
from .hiddendb import AsyncSearchEndpoint
from .core import (
    AlgorithmInfo,
    AlgorithmNotFoundError,
    AlgorithmSpec,
    AsyncStrategy,
    Discoverer,
    DiscoveryConfig,
    DiscoveryResult,
    EngineStats,
    PipelinedStrategy,
    SerialStrategy,
    SkybandResult,
    algorithm_names,
    all_algorithms,
    applicable_algorithms,
    baseline_skyline,
    default_discoverer,
    discover,
    discover_mq,
    discover_pq,
    discover_pq2d,
    discover_rq,
    discover_sq,
    get_algorithm,
    pq_db_skyband,
    register_algorithm,
    rq_db_skyband,
    sq_db_skyband,
)
from .store import CrawlStore, QueryLedger, StoreError, StoreMismatchError

__version__ = "2.0.0"

__all__ = [
    "AlgorithmInfo",
    "AlgorithmNotFoundError",
    "AlgorithmSpec",
    "AsyncSearchEndpoint",
    "AsyncStrategy",
    "Attribute",
    "CrawlStore",
    "Discoverer",
    "DiscoveryConfig",
    "DiscoveryResult",
    "EngineStats",
    "InterfaceKind",
    "Interval",
    "LexicographicRanker",
    "LinearRanker",
    "PipelinedStrategy",
    "Query",
    "QueryBudgetExceeded",
    "QueryLedger",
    "QueryResult",
    "RandomSkylineRanker",
    "Ranker",
    "Row",
    "Schema",
    "SearchEndpoint",
    "SerialStrategy",
    "SkybandResult",
    "StoreError",
    "StoreMismatchError",
    "Table",
    "TopKInterface",
    "UnsupportedQueryError",
    "__version__",
    "algorithm_names",
    "all_algorithms",
    "applicable_algorithms",
    "baseline_skyline",
    "default_discoverer",
    "discover",
    "discover_mq",
    "discover_pq",
    "discover_pq2d",
    "discover_rq",
    "discover_sq",
    "get_algorithm",
    "pq_db_skyband",
    "register_algorithm",
    "rq_db_skyband",
    "sq_db_skyband",
]
