"""repro: skyline discovery over top-k hidden web databases.

A full reproduction of Asudeh, Thirumuruganathan, Zhang and Das,
*"Discovering the Skyline of Web Databases"* (VLDB 2016): the hidden-database
simulator substrate, the SQ- / RQ- / PQ- / MQ-DB-SKY discovery algorithms,
K-skyband extensions, the crawling baseline, synthetic stand-ins for the
paper's datasets, and a benchmark harness regenerating every evaluation
figure.

Typical usage::

    from repro import (
        Attribute, InterfaceKind, Schema, Table, TopKInterface, discover,
    )

    schema = Schema([
        Attribute("price", 1000, InterfaceKind.RQ),
        Attribute("stops", 3, InterfaceKind.PQ),
    ])
    table = Table(schema, values)
    interface = TopKInterface(table, k=10)
    result = discover(interface)
    print(result.skyline, result.total_cost)
"""

from .hiddendb import (
    Attribute,
    InterfaceKind,
    Interval,
    LexicographicRanker,
    LinearRanker,
    Query,
    QueryBudgetExceeded,
    QueryResult,
    RandomSkylineRanker,
    Ranker,
    Row,
    Schema,
    Table,
    TopKInterface,
    UnsupportedQueryError,
)
from .core import (
    DiscoveryResult,
    SkybandResult,
    baseline_skyline,
    discover,
    discover_mq,
    discover_pq,
    discover_pq2d,
    discover_rq,
    discover_sq,
    pq_db_skyband,
    rq_db_skyband,
    sq_db_skyband,
)

__version__ = "1.0.0"

__all__ = [
    "Attribute",
    "DiscoveryResult",
    "InterfaceKind",
    "Interval",
    "LexicographicRanker",
    "LinearRanker",
    "Query",
    "QueryBudgetExceeded",
    "QueryResult",
    "RandomSkylineRanker",
    "Ranker",
    "Row",
    "Schema",
    "SkybandResult",
    "Table",
    "TopKInterface",
    "UnsupportedQueryError",
    "__version__",
    "baseline_skyline",
    "discover",
    "discover_mq",
    "discover_pq",
    "discover_pq2d",
    "discover_rq",
    "discover_sq",
    "pq_db_skyband",
    "rq_db_skyband",
    "sq_db_skyband",
]
