"""Freshness plane: delta-crawls that repair a ledger against a live endpoint.

Every other layer of the library assumes the hidden database never changes
between crawls.  This package drops that assumption: given a crawl store
whose ledger was billed at an older data version of the endpoint, a
:class:`DeltaCrawl` revalidates only the entries whose answers could be
affected by the observed churn (probing the previous skyline first, then
cascading re-expansion to wherever answers actually changed) and repairs
the skyline for a fraction of the from-scratch billed cost.

Entry points: ``DiscoveryConfig(mode="delta")`` through the standard
:class:`repro.Discoverer` facade, ``repro crawl --delta`` on the CLI, and
coordinator ``watch`` jobs for continuous monitoring.
"""

from .delta import DeltaCrawl, DeltaLedger, DeltaReport, run_delta

__all__ = ["DeltaCrawl", "DeltaLedger", "DeltaReport", "run_delta"]
