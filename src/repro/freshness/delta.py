"""Incremental delta-crawls over a versioned query ledger.

A *delta crawl* repairs the skyline of a live hidden database after its
contents changed, reusing the query ledger of an earlier crawl instead of
re-billing everything.  The mechanism has three parts:

**Probing.**  The previous skyline is the part of the answer space whose
change matters most, so the crawl first re-bills, for every prior skyline
vector, the one ledgered query where that vector ranked highest (plus the
broadest ledgered query overall, whose top-k is the global answer head).
Each probe's fresh answer is diffed against the stale one; every row that
appeared, vanished or changed values seeds the *dirty set*.

**Cascaded revalidation.**  The regular discovery algorithm then runs
unmodified, but its engine consults a :class:`DeltaLedger`: answers already
billed at the current data version are served free; a stale answer is served
free only while nothing dirty touches it -- none of its rows are dirty, and
no *appeared* vector inside its query's region could crack its top-k (the
ranking is domination-consistent, so a newcomer dominated by the answer's
worst returned row provably ranks below the whole window); any suspect entry
reads as a miss and is re-billed, and the fresh answer's diff extends the
dirty set -- so re-expansion cascades exactly along the paths where answers
changed.

**Fixpoint.**  Because the dirty set grows during the run, an answer trusted
early may be incriminated later.  After each pass the trusted entries are
re-checked against the final dirty set (and every skyline vector the pass
produced must be confirmed by a current-version answer); if anything became
suspect the algorithm runs again -- previously billed answers now replay
free from the ledger, so an extra pass re-bills only the newly suspect
entries.  At the fixpoint every served answer is consistent with everything
the repair observed, the surviving stale entries are re-stamped to the
current epoch (:meth:`repro.store.CrawlStore.ledger_bump_epoch` -- the
durable payoff), and the session files its result like any other crawl.

Delta repair is exact whenever the churn is visible through the probed
frontier and the cascade -- which covers mutations of any previously
retrieved row and any change that surfaces in a re-billed answer.  A
mutation that hides from every billed answer (possible only in regions the
previous crawl proved irrelevant) cannot be observed through a top-k
interface without re-billing those regions wholesale, which is exactly the
from-scratch cost this mode exists to avoid.  For churn-heavy endpoints
``DiscoveryConfig(options={"delta_strict": True})`` buys back most of that
blind spot: strict revalidation additionally re-bills every non-overflowing
certificate whose region is not provably dominated by a vector confirmed
alive at the current version, so a hidden insert can only survive inside a
region where it is dominated anyway -- at a correspondingly higher billed
cost on sparse-frontier (small ``k``) workloads.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Mapping

import numpy as np

from ..core.base import DiscoveryResult, DiscoverySession
from ..core.dominance import dominates, skyline_indices
from ..core.engine import make_strategy
from ..hiddendb.errors import QueryBudgetExceeded
from ..hiddendb.interface import QueryResult
from ..hiddendb.query import Query

if TYPE_CHECKING:  # pragma: no cover - types only
    from ..core.registry import AlgorithmSpec, DiscoveryConfig
    from ..hiddendb.endpoint import SearchEndpoint
    from ..store import CrawlStore, LedgerEntry, SessionRecord

#: Safety valve on revalidation passes.  The forced set only grows and is
#: bounded by the stale-entry count, so the fixpoint terminates on its own;
#: the cap just bounds pathological ledgers.
MAX_ROUNDS = 8


@dataclass(frozen=True)
class DeltaReport:
    """Accounting of one delta-crawl repair (``result.freshness``)."""

    #: Endpoint data version the ledger was repaired to.
    epoch: int
    #: Stale (older-epoch, unexpired) ledger entries available for reuse.
    stale_entries: int
    #: Probe queries issued against the previous skyline and answer head.
    probes: int
    #: Stale answers served free in the final (fixpoint) pass.
    served_stale: int
    #: Stale entries forced to re-bill because the dirty set touched them.
    forced: int
    #: Surviving stale entries re-stamped to the current epoch.
    revalidated: int
    #: Revalidation passes until the fixpoint (1 = nothing cascaded back).
    rounds: int
    #: Total queries billed by the whole repair.
    billed: int
    #: Distinct value vectors of the previous skyline.
    prior_skyline_size: int
    #: Skyline vectors that appeared since the previous crawl.
    skyline_added: tuple[tuple[int, ...], ...] = ()
    #: Skyline vectors that vanished since the previous crawl.
    skyline_removed: tuple[tuple[int, ...], ...] = ()

    @property
    def skyline_changed(self) -> bool:
        """Whether the repair observed any skyline membership change."""
        return bool(self.skyline_added or self.skyline_removed)

    def as_dict(self) -> dict[str, object]:
        """JSON-friendly view (job progress, benchmark records)."""
        return {
            "epoch": self.epoch,
            "stale_entries": self.stale_entries,
            "probes": self.probes,
            "served_stale": self.served_stale,
            "forced": self.forced,
            "revalidated": self.revalidated,
            "rounds": self.rounds,
            "billed": self.billed,
            "prior_skyline_size": self.prior_skyline_size,
            "skyline_added": [list(v) for v in self.skyline_added],
            "skyline_removed": [list(v) for v in self.skyline_removed],
        }


class DeltaLedger:
    """Epoch-straddling ledger view driving the revalidation cascade.

    Wraps the store ledger pinned to the *current* epoch (reads and writes
    exactly like a normal durable crawl) plus the decoded stale entries of
    older epochs.  ``get`` serves, in order: the fresh ledger; then a stale
    answer, but only while it is neither *forced* nor *suspect* under the
    dirty set accumulated so far.  ``put`` persists the billed answer at
    the current epoch and diffs it against the stale answer it replaces,
    growing the dirty set -- the cascade's propagation step.

    Thread-safe: pipelined/async strategies consult from their merge path
    while transports complete concurrently.
    """

    def __init__(
        self,
        fresh: object,
        stale: Mapping[str, "LedgerEntry"],
        *,
        epoch: int,
        ranking_width: int = 0,
        strict: bool = False,
    ) -> None:
        self._fresh = fresh
        self._stale = dict(stale)
        self._epoch = int(epoch)
        self._width = int(ranking_width)
        self._strict = bool(strict)
        self._lock = threading.Lock()
        self._dirty_rids: set[int] = set()
        #: Value vectors that *appeared* at the current version (inserts,
        #: update targets): the only changes that can newly crack a top-k.
        self._dirty_added: set[tuple[int, ...]] = set()
        #: Value vectors that *vanished* (deletes, update sources): these
        #: can only affect answers that contained them, which the direct
        #: row-overlap test catches.
        self._dirty_removed: set[tuple[int, ...]] = set()
        self._confirmed: set[tuple[int, ...]] = set()
        self._forced: set[str] = set()
        self._trusted: dict[str, "LedgerEntry"] = {}
        self._served_stale = 0
        self._suspect_misses = 0

    # ------------------------------------------------------------------
    # engine-facing ledger protocol
    # ------------------------------------------------------------------
    def get(self, query: Query) -> QueryResult | None:
        """A free answer for ``query``: fresh, or still-trustworthy stale."""
        hit = self._fresh.get(query)
        if hit is not None:
            with self._lock:
                self._confirmed.update(row.values for row in hit.rows)
            return hit
        key = query.canonical_key()
        entry = self._stale.get(key)
        if entry is None:
            return None
        with self._lock:
            if key in self._forced or self._suspect(entry):
                self._suspect_misses += 1
                return None
            self._trusted[key] = entry
            self._served_stale += 1
        return entry.result

    def put(self, query: Query, result: QueryResult) -> None:
        """Persist one billed answer and fold its diff into the dirty set."""
        key = query.canonical_key()
        with self._lock:
            self._confirmed.update(row.values for row in result.rows)
            stale = self._stale.get(key)
            if stale is not None:
                self._diff(stale.result, result)
            self._trusted.pop(key, None)
        self._fresh.put(query, result)

    # ------------------------------------------------------------------
    # dirty-set bookkeeping (all callers hold the lock)
    # ------------------------------------------------------------------
    def _diff(self, old: QueryResult, new: QueryResult) -> None:
        old_rows = {row.rid: row.values for row in old.rows}
        new_rows = {row.rid: row.values for row in new.rows}
        for rid, values in old_rows.items():
            if new_rows.get(rid) != values:
                self._dirty_rids.add(rid)
                self._dirty_removed.add(values)
        for rid, values in new_rows.items():
            if old_rows.get(rid) != values:
                self._dirty_rids.add(rid)
                self._dirty_added.add(values)

    def _suspect(self, entry: "LedgerEntry") -> bool:
        rows = entry.result.rows
        for row in rows:
            if (
                row.rid in self._dirty_rids
                or row.values in self._dirty_added
                or row.values in self._dirty_removed
            ):
                return True
        # Beyond direct overlap, only an *appeared* vector inside the
        # query's region can change the answer: a vanished in-region row
        # either sat in the answer (caught above) or ranked below it.
        query = entry.query
        if entry.result.overflow and rows:
            # The answer is a full top-k window.  Ranking is domination-
            # consistent, so a newcomer dominated by the last (worst)
            # returned row surely ranks below the whole window and cannot
            # crack it.
            last = rows[-1].values
            return any(
                query.matches_values(values) and not dominates(last, values)
                for values in self._dirty_added
            )
        # A non-overflowing answer is a completeness certificate for its
        # region; an observed appearance inside it voids the certificate.
        if any(
            query.matches_values(values) for values in self._dirty_added
        ):
            return True
        if self._strict:
            # Strict revalidation also distrusts certificates that an
            # *unobserved* insert could void: the certificate survives
            # only when its region is provably dominated by a vector
            # confirmed alive at the current version -- then anything
            # hiding inside is dominated too (transitively) and can never
            # reach the skyline.  Everything else re-bills, which is
            # exactly how hidden inserts surface into the dirty set.
            return not self._covered(query)
        return False

    def _covered(self, query: Query) -> bool:
        if not self._width:
            return False
        intervals = [query.ranges.get(i) for i in range(self._width)]
        if all(
            interval is not None and interval.lo == interval.hi
            for interval in intervals
        ):
            # A fully pinned (point) region admits exactly one ranking
            # vector, so nothing hiding there can add a skyline vector --
            # and a vanished one is caught by the skyline-support check.
            return True
        if query.filters:
            # A filtered region is a different lattice slice; a global
            # confirmed vector says nothing about it.
            return False
        corner = tuple(
            interval.lo if interval is not None else 0
            for interval in intervals
        )
        return any(
            all(s[i] <= corner[i] for i in range(self._width))
            for s in self._confirmed
        )

    # ------------------------------------------------------------------
    # fixpoint driver interface
    # ------------------------------------------------------------------
    def begin_round(self) -> None:
        """Reset the per-pass trust tracking (dirty/forced sets persist)."""
        with self._lock:
            self._trusted.clear()
            self._served_stale = 0

    def finish_round(self) -> int:
        """Force entries this pass trusted but the final dirty set touches.

        Returns how many entries were newly forced; zero means the pass
        was self-consistent (the fixpoint).
        """
        with self._lock:
            incriminated = [
                key
                for key, entry in self._trusted.items()
                if self._suspect(entry)
            ]
            self._forced.update(incriminated)
            return len(incriminated)

    def force_containing(self, vectors: Iterable[tuple[int, ...]]) -> int:
        """Force every trusted entry whose answer carries one of ``vectors``.

        Used for skyline-support verification: a skyline vector the pass
        produced purely from stale answers must be re-billed before it can
        be reported.
        """
        wanted = set(vectors)
        if not wanted:
            return 0
        with self._lock:
            incriminated = [
                key
                for key, entry in self._trusted.items()
                if any(row.values in wanted for row in entry.result.rows)
                and key not in self._forced
            ]
            self._forced.update(incriminated)
            return len(incriminated)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """Data version this view repairs the ledger to."""
        return self._epoch

    @property
    def stale_entries(self) -> int:
        """Older-epoch entries available for reuse."""
        return len(self._stale)

    @property
    def served_stale(self) -> int:
        """Stale answers served free in the current pass."""
        with self._lock:
            return self._served_stale

    @property
    def forced_count(self) -> int:
        """Entries barred from free serving by the cascade."""
        with self._lock:
            return len(self._forced)

    def confirmed_vectors(self) -> frozenset[tuple[int, ...]]:
        """Value vectors confirmed to exist at the current data version."""
        with self._lock:
            return frozenset(self._confirmed)

    def trusted_keys(self) -> tuple[str, ...]:
        """Canonical keys of the stale entries the last pass served free."""
        with self._lock:
            return tuple(sorted(self._trusted))

    def __repr__(self) -> str:
        return (
            f"DeltaLedger(epoch={self._epoch}, stale={len(self._stale)}, "
            f"forced={len(self._forced)}, dirty={len(self._dirty_rids)})"
        )


class DeltaCrawl:
    """One delta-crawl repair of a store ledger against a live endpoint.

    Built by the :class:`repro.Discoverer` facade for
    ``DiscoveryConfig(mode="delta")``; usable directly when the spec is
    already resolved.  The repair always begins a *fresh* crawl session:
    reusing an earlier session's replay nonce could let the server replay
    answers billed against the old data version.
    """

    def __init__(
        self,
        interface: "SearchEndpoint",
        spec: "AlgorithmSpec",
        config: "DiscoveryConfig",
    ) -> None:
        if config.store is None:
            raise ValueError("a delta crawl requires DiscoveryConfig(store=...)")
        self._interface = interface
        self._spec = spec
        self._config = config
        self._store: "CrawlStore" = config.store
        self._ledger: DeltaLedger | None = None
        self._fingerprint = ""
        self._epoch = 0
        self._probes = 0

    # ------------------------------------------------------------------
    # session plumbing
    # ------------------------------------------------------------------
    def _ledger_factory(
        self, fingerprint: str, record: "SessionRecord"
    ) -> DeltaLedger:
        if self._ledger is None:
            self._fingerprint = fingerprint
            # ``attach_store`` registered the endpoint at the interface's
            # advertised data version, so the store's registered version
            # *is* the current epoch.
            self._epoch = self._store.endpoint_data_version(fingerprint)
            now = time.time()
            stale = {
                entry.qkey: entry
                for entry in self._store.ledger_entries(fingerprint)
                if entry.epoch != self._epoch
                and (entry.expires_at is None or entry.expires_at > now)
            }
            fresh = self._store.ledger(
                fingerprint, record.session_id, epoch=self._epoch
            )
            self._ledger = DeltaLedger(
                fresh,
                stale,
                epoch=self._epoch,
                ranking_width=len(self._interface.schema.ranking_attributes),
                strict=bool(self._config.options.get("delta_strict", False)),
            )
        return self._ledger

    def _make_session(
        self, session_id: str | None, billed_so_far: int
    ) -> DiscoverySession:
        cfg = self._config
        budget = None
        if cfg.budget is not None:
            budget = max(cfg.budget - billed_so_far, 0)
        session = DiscoverySession(
            self._interface,
            cfg.base_query,
            budget=budget,
            on_query=cfg.on_query,
            on_tuple=cfg.on_tuple,
            strategy=make_strategy(
                cfg.strategy, workers=cfg.workers, batch_size=cfg.batch_size
            ),
            dedup=cfg.dedup if cfg.dedup is not None else False,
        )
        session.attach_store(
            self._store,
            algorithm=self._spec.name,
            resume=False,
            session_id=session_id,
            checkpoint_every=cfg.checkpoint_every,
            ledger_factory=self._ledger_factory,
        )
        return session

    # ------------------------------------------------------------------
    # probe selection
    # ------------------------------------------------------------------
    def _prior_skyline(self) -> frozenset[tuple[int, ...]]:
        """The previous crawl's skyline vectors.

        Preferred source: the newest *complete* filed result of this
        endpoint.  Fallback (crashed or never-finished previous crawl):
        the skyline of every row the stale ledger retrieved.
        """
        for record in self._store.sessions(self._fingerprint):
            result = record.result
            if (
                record.status == "finished"
                and result
                and result.get("complete")
                and result.get("skyline") is not None
            ):
                return frozenset(
                    tuple(int(v) for v in vector)
                    for vector in result["skyline"]
                )
        assert self._ledger is not None
        vectors = {
            row.values
            for entry in self._ledger._stale.values()
            for row in entry.result.rows
        }
        if not vectors:
            return frozenset()
        matrix = np.array(sorted(vectors), dtype=np.int64)
        keep = skyline_indices(matrix)
        return frozenset(
            tuple(int(v) for v in matrix[position]) for position in keep
        )

    def _select_probes(
        self, prior: frozenset[tuple[int, ...]]
    ) -> list[tuple[tuple[int, ...] | None, "LedgerEntry"]]:
        """The probe plan: per prior-skyline vector, the stale entry where it
        ranked highest (broadest query tie-breaks), after the broadest stale
        entry overall -- its top-k is the global head of the answer space,
        where a newly inserted high ranker must surface.  Each item pairs the
        vector a probe vouches for (``None`` for the head probe) with its
        entry, so issuing can skip vectors an earlier answer already
        confirmed."""
        assert self._ledger is not None
        stale = self._ledger._stale
        if not stale:
            return []
        best: dict[tuple[int, ...], tuple[tuple[int, int, str], "LedgerEntry"]]
        best = {}
        for entry in stale.values():
            for position, row in enumerate(entry.result.rows):
                if row.values not in prior:
                    continue
                rank = (position, entry.query.num_predicates, entry.qkey)
                kept = best.get(row.values)
                if kept is None or rank < kept[0]:
                    best[row.values] = (rank, entry)
        broadest = min(
            stale.values(),
            key=lambda entry: (entry.query.num_predicates, entry.qkey),
        )
        plan: list[tuple[tuple[int, ...] | None, "LedgerEntry"]]
        plan = [(None, broadest)]
        for vector, (_, entry) in sorted(
            best.items(), key=lambda item: (item[1][0], item[0])
        ):
            plan.append((vector, entry))
        return plan

    def _issue_probes(
        self,
        session: DiscoverySession,
        probes: list[tuple[tuple[int, ...] | None, "LedgerEntry"]],
    ) -> None:
        assert self._ledger is not None
        issued: set[str] = set()
        for vector, entry in probes:
            if entry.qkey in issued:
                continue
            if (
                vector is not None
                and vector in self._ledger.confirmed_vectors()
            ):
                # An earlier probe's fresh answer already carries this
                # vector at the current version; no second bill needed.
                continue
            try:
                session.issue(entry.query)
            except ValueError:
                # The ledgered query contradicts this run's base query
                # (repairing under different filtering conditions); the
                # entry simply stays stale.
                continue
            issued.add(entry.qkey)
            self._probes += 1

    # ------------------------------------------------------------------
    # the repair loop
    # ------------------------------------------------------------------
    def run(self) -> DiscoveryResult:
        """Run the repair to its fixpoint and file the result."""
        cfg = self._config
        interface = self._interface
        # A live remote endpoint may have advanced past the metadata the
        # client mounted with; re-reading the version is free (healthz).
        refresh = getattr(interface, "refresh_data_version", None)
        if refresh is not None:
            refresh()
        session_id = cfg.session_id
        if session_id is not None:
            # Pinned session ids (coordinator watch jobs) get an epoch
            # suffix: each data version repairs under its own session --
            # and therefore its own replay nonce, so the server can never
            # replay an answer billed against an older version.
            version = int(getattr(interface, "data_version", 0) or 0)
            session_id = f"{session_id}@v{version}"

        observer = None
        owns_observer = False
        if cfg.trace is not None:
            from ..obs import RunObserver

            if isinstance(cfg.trace, RunObserver):
                observer = cfg.trace
            else:
                observer = RunObserver(trace=cfg.trace)
                owns_observer = True

        prior: frozenset[tuple[int, ...]] = frozenset()
        session: DiscoverySession | None = None
        complete = True
        rounds = 0
        try:
            while True:
                rounds += 1
                billed_so_far = 0
                if session is not None:
                    billed_so_far = session.cost
                session = self._make_session(session_id, billed_so_far)
                session_id = session.store_session.session_id
                if observer is not None:
                    session.attach_observer(observer, owned=False)
                ledger = self._ledger
                assert ledger is not None
                ledger.begin_round()
                try:
                    if rounds == 1:
                        prior = self._prior_skyline()
                        self._issue_probes(
                            session, self._select_probes(prior)
                        )
                    self._spec.run(session, cfg)
                except QueryBudgetExceeded:
                    complete = False
                    break
                newly_forced = ledger.finish_round()
                confirmed = ledger.confirmed_vectors()
                unconfirmed = [
                    row.values
                    for row in session.confirmed_skyline()
                    if row.values not in confirmed
                ]
                newly_forced += ledger.force_containing(unconfirmed)
                if observer is not None:
                    observer.client_event(
                        "delta_round",
                        round=rounds,
                        forced=newly_forced,
                        served_stale=ledger.served_stale,
                    )
                if newly_forced == 0 or rounds >= MAX_ROUNDS:
                    break
        finally:
            set_nonce = getattr(interface, "set_replay_nonce", None)
            if set_nonce is not None:
                set_nonce(None)
            if session is not None:
                session.close_observer()
            if observer is not None and owns_observer:
                observer.close()

        assert session is not None and self._ledger is not None
        ledger = self._ledger
        revalidated = 0
        if complete:
            revalidated = self._store.ledger_bump_epoch(
                self._fingerprint, ledger.trusted_keys(), self._epoch
            )
        result = session.result(
            self._spec.display(interface.schema), complete
        )
        new_skyline = result.skyline_values
        report = DeltaReport(
            epoch=self._epoch,
            stale_entries=ledger.stale_entries,
            probes=self._probes,
            served_stale=ledger.served_stale,
            forced=ledger.forced_count,
            revalidated=revalidated,
            rounds=rounds,
            billed=result.total_cost,
            prior_skyline_size=len(prior),
            skyline_added=tuple(sorted(new_skyline - prior)),
            skyline_removed=tuple(sorted(prior - new_skyline)),
        )
        result = _decorated(result, self._spec, cfg, session, report)
        session.finish_store(result)
        return result


def _decorated(
    result: DiscoveryResult,
    spec: "AlgorithmSpec",
    cfg: "DiscoveryConfig",
    session: DiscoverySession,
    report: DeltaReport,
) -> DiscoveryResult:
    from dataclasses import replace

    return replace(
        result,
        config=cfg,
        info=spec.info(),
        query_log=session.log if cfg.record_log else (),
        store_session=session.store_session,
        freshness=report,
    )


def run_delta(
    interface: "SearchEndpoint",
    algorithm: str | None = None,
    *,
    config: "DiscoveryConfig",
) -> DiscoveryResult:
    """Run one delta-crawl repair (convenience over :class:`DeltaCrawl`).

    ``config`` must carry a store; ``algorithm`` resolves through the
    registry exactly like :meth:`repro.Discoverer.run` (auto-dispatch on
    the schema's taxonomy when ``None``).
    """
    from ..core.facade import Discoverer

    if config.mode != "delta":
        config = config.replace(mode="delta")
    spec = Discoverer._spec_for(interface, algorithm)
    return DeltaCrawl(interface, spec, config).run()
