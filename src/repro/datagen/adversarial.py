"""Adversarial instances from the paper's proofs.

Two constructions:

* :func:`theorem1_table` -- the lower-bound instance of Theorem 1 (§3).
  ``m`` *blocker* tuples force any SQ discovery algorithm to issue
  fully-specified queries (every query with fewer than ``m`` predicates
  returns a blocker), and ``s`` skyline tuples built from permutations make
  ``C(s, m)`` probe points indistinguishable from potential skyline tuples.
  On this family the query cost of SQ-DB-SKY grows combinatorially with the
  skyline size, matching the worst-case analysis.

* :func:`priority_case_study_table` -- the §5.3 case-study database: a
  3-attribute PQ database whose ranking function prioritises the third
  attribute ``z``, with every ``x`` and ``y`` value occupied at ``z = 0``.
  The paper uses it to show PQ-DB-SKY approaching the instance-optimal cost.
"""

from __future__ import annotations

import itertools

import numpy as np

from ..hiddendb.attributes import Attribute, InterfaceKind, Schema
from ..hiddendb.ranking import LexicographicRanker, Ranker
from ..hiddendb.table import Table


def theorem1_table(
    m: int,
    s: int,
    kind: InterfaceKind = InterfaceKind.SQ,
) -> Table:
    """The Theorem-1 lower-bound instance with ``m`` attributes.

    Layout (scaled to an integer domain):

    * ``m`` blockers ``t0_i``: best value everywhere except attribute ``i``,
      where they hold the worst value ``h + 1``;
    * ``s`` skyline tuples, each a distinct permutation of ``m`` evenly
      spread mid-range levels, perturbed by per-cell unique "noise" offsets
      so every attribute value is unique (the proof's epsilon_ij).

    Requires ``s <= m!`` (the number of distinct permutations).
    """
    if m < 2:
        raise ValueError(f"m must be >= 2, got {m}")
    if s < 1:
        raise ValueError(f"s must be >= 1, got {s}")
    permutations = []
    for permutation in itertools.permutations(range(m)):
        permutations.append(permutation)
        if len(permutations) == s:
            break
    if len(permutations) < s:
        raise ValueError(f"s={s} exceeds the {len(permutations)} available "
                         f"permutations of m={m} levels")
    # Each level occupies a band of width s so the per-tuple noise offsets
    # keep all values unique, mirroring the proof's epsilon_ij.
    band = s
    h = m * band  # worst in-band value
    domain = h + 2  # h + 1 is the blockers' "poison" value
    rows = []
    for blocker in range(m):
        values = [0] * m  # the domain's best value: nothing dominates them
        values[blocker] = h + 1
        rows.append(values)
    for index, permutation in enumerate(permutations):
        # The per-tuple offset plays the role of the proof's epsilon_ij:
        # tuples sharing a level on an attribute still hold distinct values.
        rows.append(
            [1 + int(level) * band + index for level in permutation]
        )
    schema = Schema(
        [Attribute(f"a{i}", domain, kind) for i in range(m)]
    )
    return Table(schema, np.asarray(rows, dtype=np.int64))


def theorem1_skyline_size(table: Table) -> int:
    """Number of non-blocker skyline tuples of a Theorem-1 instance."""
    return len(table.skyline_indices()) - table.m


def priority_case_study_table(
    dom_x: int = 6,
    dom_y: int = 6,
    dom_z: int = 3,
    extra: int = 30,
    seed: int = 0,
) -> tuple[Table, Ranker]:
    """The §5.3 case-study PQ database and its priority ranking function.

    Every ``x`` value and every ``y`` value is occupied by a tuple with
    ``z = 0``, and the ranking function returns ``z``-best tuples first
    (so any 1-D query on ``x`` or ``y`` behaves like its ``z = 0``
    restriction).  Returns the table together with the matching ranker.
    """
    rng = np.random.default_rng(seed)
    rows = {(x, int(rng.integers(dom_y)), 0) for x in range(dom_x)}
    rows |= {(int(rng.integers(dom_x)), y, 0) for y in range(dom_y)}
    for _ in range(extra):
        rows.add(
            (
                int(rng.integers(dom_x)),
                int(rng.integers(dom_y)),
                int(rng.integers(dom_z)),
            )
        )
    matrix = np.asarray(sorted(rows), dtype=np.int64)
    schema = Schema(
        [
            Attribute("x", dom_x, InterfaceKind.PQ),
            Attribute("y", dom_y, InterfaceKind.PQ),
            Attribute("z", dom_z, InterfaceKind.PQ),
        ]
    )
    # z is the first-priority ordering attribute (§5.3's construction).
    return Table(schema, matrix), LexicographicRanker([2, 0, 1])
