"""Synthetic stand-in for the Blue Nile diamond catalogue (§8.3).

At the time of the paper's live experiments Blue Nile listed 209,666
diamonds over six attributes; five have universal preference orders and were
used as skyline attributes -- lower Price, higher Carat, better Cut, whiter
Color, higher Clarity -- and all five are exposed through two-ended range
predicates, with a price-ascending default ranking.  Shape is an order-less
filtering attribute.

The generator reproduces the gemological pricing structure: price grows
super-linearly with carat and multiplicatively with the quality grades, plus
market noise.  That correlation is what gives the catalogue its large
skyline (the paper discovered 2,149 skyline diamonds): at every price point
there is a best-value frontier across the four quality dimensions.
"""

from __future__ import annotations

import numpy as np

from ..hiddendb.attributes import Attribute, InterfaceKind, Schema
from ..hiddendb.table import Table

CUT_GRADES = ("Astor Ideal", "Ideal", "Very Good", "Good", "Fair")
COLOR_GRADES = ("D", "E", "F", "G", "H", "I", "J", "K")
CLARITY_GRADES = ("FL", "IF", "VVS1", "VVS2", "VS1", "VS2", "SI1", "SI2")
SHAPES = (
    "Round", "Princess", "Cushion", "Oval", "Emerald",
    "Pear", "Marquise", "Asscher", "Radiant", "Heart",
)

#: Price buckets (preference value 0 = cheapest bucket).
PRICE_DOMAIN = 20_000
#: Carat in hundredths, 0.20 .. 8.19 ct; preference value 0 = heaviest.
CARAT_DOMAIN = 800


def diamonds_table(n: int = 50_000, seed: int = 0) -> Table:
    """Generate a Blue Nile-like catalogue of ``n`` diamonds.

    Ranking attributes, in schema order: price (RQ, lower better), carat
    (RQ, higher better -- preference 0 is the heaviest stone), cut, color,
    clarity (RQ ordinal grades).  Shape is a filtering attribute.
    """
    rng = np.random.default_rng(seed)
    carat_ct = np.minimum(rng.lognormal(-0.45, 0.55, size=n) + 0.2, 8.19)
    cut = rng.choice(len(CUT_GRADES), size=n, p=(0.05, 0.45, 0.3, 0.15, 0.05))
    color = rng.integers(0, len(COLOR_GRADES), size=n)
    clarity = rng.choice(
        len(CLARITY_GRADES), size=n,
        p=(0.01, 0.04, 0.08, 0.12, 0.2, 0.25, 0.18, 0.12),
    )
    # Rapaport-style pricing: price per carat grows with carat and with each
    # quality grade; multiplicative log-normal market noise.
    quality_discount = (
        0.94 ** cut * 0.955 ** color * 0.93 ** clarity
    )
    # Market noise of ~30%: enough mispricing that most stones are
    # dominated by a better-value peer, leaving a skyline of the paper's
    # scale (|S| ~ 2,000 at catalogue size).
    price_usd = (
        3500.0
        * carat_ct ** 1.9
        * quality_discount
        * rng.lognormal(0.0, 0.3, size=n)
    )
    price = np.clip(price_usd / 25.0, 0, PRICE_DOMAIN - 1).astype(np.int64)
    carat = np.clip(
        CARAT_DOMAIN - 1 - ((carat_ct - 0.2) * 100.0).astype(np.int64),
        0,
        CARAT_DOMAIN - 1,
    )
    shape = rng.integers(0, len(SHAPES), size=n)
    schema = Schema(
        [
            Attribute("price", PRICE_DOMAIN, InterfaceKind.RQ),
            Attribute("carat", CARAT_DOMAIN, InterfaceKind.RQ),
            Attribute("cut", len(CUT_GRADES), InterfaceKind.RQ,
                      labels=CUT_GRADES),
            Attribute("color", len(COLOR_GRADES), InterfaceKind.RQ,
                      labels=COLOR_GRADES),
            Attribute("clarity", len(CLARITY_GRADES), InterfaceKind.RQ,
                      labels=CLARITY_GRADES),
            Attribute("shape", len(SHAPES), InterfaceKind.FILTER,
                      labels=SHAPES),
        ]
    )
    matrix = np.column_stack([price, carat, cut, color, clarity])
    return Table(schema, matrix, {"shape": shape})


#: Index of the price attribute (the site's default ranking, low to high).
PRICE_ATTRIBUTE = 0
