"""Synthetic stand-in for the Yahoo! Autos used-car scenario (§8.3).

The paper's live YA experiment covered 125,149 cars listed within 30 miles
of New York City, with three ranking attributes -- Price (lower preferred),
Mileage (lower preferred) and Year (newer preferred) -- all supported as
two-ended ranges, under a price-ascending default ranking.  The paper
discovered 1,601 skyline cars at an average cost below 2 queries per tuple.

The generator reproduces the used-car market structure: price depreciates
with age and mileage, mileage accumulates with age, and the residual spread
(condition, trim, negotiation room) creates the dense price/mileage/year
trade-off frontier responsible for the large skyline.
"""

from __future__ import annotations

import numpy as np

from ..hiddendb.attributes import Attribute, InterfaceKind, Schema
from ..hiddendb.table import Table

#: Price in $10 buckets up to $50k; preference 0 = cheapest.
PRICE_DOMAIN = 5000
#: Mileage in 100-mile buckets up to 300k miles; preference 0 = lowest.
MILEAGE_DOMAIN = 3000
#: Model years, newest first (preference 0 = current model year).
YEAR_DOMAIN = 30


def autos_table(n: int = 50_000, seed: int = 0) -> Table:
    """Generate a Yahoo! Autos-like listing table of ``n`` cars."""
    rng = np.random.default_rng(seed)
    age_years = np.minimum(rng.gamma(2.2, 3.0, size=n), YEAR_DOMAIN - 1)
    # Annual mileage is multiplicative (drivers differ, but an old car never
    # has a fresh odometer), which keeps the price/mileage/year frontier
    # dense instead of letting zero-mile classics dominate everything.
    annual_miles = 11_000.0 * rng.lognormal(0.0, 0.35, size=n)
    miles = np.clip((age_years + 0.25) * annual_miles, 0, 299_999)
    # Price: exponential depreciation in both age and mileage, with small
    # segment/condition noise.  Mileage being the dominant within-year price
    # driver creates the strong price/mileage anti-correlation responsible
    # for the large used-car skyline the paper observed (1,601 tuples).
    base_value = rng.lognormal(10.1, 0.08, size=n)
    price_usd = np.clip(
        base_value * 0.95 ** age_years * np.exp(-miles / 45_000.0),
        300.0,
        None,
    ) * rng.lognormal(0.0, 0.025, size=n)
    price = np.clip(price_usd / 10.0, 0, PRICE_DOMAIN - 1).astype(np.int64)
    mileage = np.clip(miles / 100.0, 0, MILEAGE_DOMAIN - 1).astype(np.int64)
    year = np.clip(age_years, 0, YEAR_DOMAIN - 1).astype(np.int64)
    schema = Schema(
        [
            Attribute("price", PRICE_DOMAIN, InterfaceKind.RQ),
            Attribute("mileage", MILEAGE_DOMAIN, InterfaceKind.RQ),
            Attribute("year", YEAR_DOMAIN, InterfaceKind.RQ),
            Attribute("body_style", 8, InterfaceKind.FILTER),
        ]
    )
    matrix = np.column_stack([price, mileage, year])
    body = rng.integers(0, 8, size=n)
    return Table(schema, matrix, {"body_style": body})


#: Index of the price attribute (the site's default ranking, low to high).
PRICE_ATTRIBUTE = 0
