"""Build and load SQLite-backed tables from any datagen generator.

Thin, datagen-flavoured wrappers over :mod:`repro.hiddendb.sqltable`: a
million-tuple workload is generated once (`repro datagen build-db`, or
:func:`table_to_sqlite` from code), persisted with its rank index, and
then served any number of times by ``repro serve --table-db`` -- which
starts instantly because it never materialises the tuples in memory.
"""

from __future__ import annotations

from pathlib import Path

from ..hiddendb.ranking import Ranker
from ..hiddendb.sqltable import SQLTable, build_sqltable
from ..hiddendb.table import Table


def table_to_sqlite(
    path: str | Path,
    table: Table,
    ranker: Ranker | None = None,
    *,
    name: str = "",
) -> Path:
    """Persist ``table`` (rank-indexed under ``ranker``) at ``path``.

    ``name`` becomes the served dataset label (and thus part of the
    endpoint fingerprint); pass the same label the in-memory ``serve``
    path would use so memory- and SQLite-served instances of one dataset
    share crawl-store ledgers.
    """
    return build_sqltable(path, table, ranker, name=name)


def sqlite_table(path: str | Path) -> SQLTable:
    """Open the SQLite table previously built at ``path``."""
    return SQLTable(path)


__all__ = ["sqlite_table", "table_to_sqlite"]
