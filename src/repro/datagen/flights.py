"""Synthetic stand-in for the US DOT on-time flights dataset (§8.1).

The paper's offline experiments use the January-2015 BTS on-time extract:
457,013 flights, 9 ordinal ranking attributes with domain sizes from 11 to
4,983, two of which (the "group" attributes) are natively discretised and
serve as PQ attributes; four more derived group attributes provide extra PQ
attributes when needed.

We cannot fetch the BTS extract offline, so this generator reproduces its
*structure*: the same nine ranking attributes in the same order, the
reported domain-size range, and the real-world correlations among them --
air time tracks distance, elapsed time is air time plus taxiing, arrival
delay tracks departure delay, and each group attribute is a coarsened copy
of its parent.  Preference orders follow the paper: shorter delays and
durations rank higher; *longer* distances rank higher.

The experiments that consume this data (Figures 13-21) depend only on the
interface taxonomy, the skyline-size behaviour as n and m vary, and the
attribute correlations, all of which the generator preserves.
"""

from __future__ import annotations

import numpy as np

from ..hiddendb.attributes import Attribute, InterfaceKind, Schema
from ..hiddendb.table import Table

#: Ranking attributes in the paper's listing order.  Sizes chosen to match
#: the reported domain range: smallest 11, largest 4,983.
RANKING_ATTRIBUTES: tuple[tuple[str, int], ...] = (
    ("dep_delay", 1500),
    ("taxi_out", 180),
    ("taxi_in", 160),
    ("actual_elapsed", 700),
    ("air_time", 660),
    ("distance", 4983),
    ("delay_group", 11),
    ("distance_group", 11),
    ("arrival_delay", 1500),
)

#: The two natively discretised attributes, used as PQ by default (§8.1).
DEFAULT_PQ = ("delay_group", "distance_group")

#: Derived group attributes available as additional PQ attributes.
#: ``air_time_group`` comes first: its preference (shorter flights) opposes
#: ``distance_group``'s (longer flights), which keeps the PQ skyline from
#: collapsing to a single corner tuple -- matching the non-trivial PQ costs
#: the paper reports in Figures 16-17.
DERIVED_GROUPS: tuple[tuple[str, str, int], ...] = (
    ("air_time_group", "air_time", 12),
    ("taxi_out_group", "taxi_out", 12),
    ("arrival_delay_group", "arrival_delay", 15),
    ("taxi_in_group", "taxi_in", 12),
)


def _clip(values: np.ndarray, domain: int) -> np.ndarray:
    return np.clip(values, 0, domain - 1).astype(np.int64)


def _coarsen(values: np.ndarray, parent_domain: int, domain: int) -> np.ndarray:
    """Discretise a parent column into ``domain`` buckets (the DOT 'groups')."""
    return _clip(values * domain // parent_domain, domain)


def flights_table(
    n: int = 100_000,
    seed: int = 0,
    pq_attributes: tuple[str, ...] = DEFAULT_PQ,
    range_kind: InterfaceKind = InterfaceKind.RQ,
    derived_groups: tuple[str, ...] = (),
) -> Table:
    """Generate a DOT-like flights table.

    Parameters
    ----------
    n:
        Number of flights (the paper's full extract has 457,013).
    seed:
        RNG seed; the same seed always yields the same table.
    pq_attributes:
        Ranking attributes exposed through point predicates.
    range_kind:
        Interface kind of the remaining ranking attributes (RQ or SQ
        depending on the experiment).
    derived_groups:
        Names from :data:`DERIVED_GROUPS` to append as extra PQ attributes
        (used by the PQ experiments that need more than two PQ attributes).
    """
    rng = np.random.default_rng(seed)
    sizes = dict(RANKING_ATTRIBUTES)

    # Distance in "preference space" (0 = longest flight, preferred).  A
    # log-normal mileage profile: many short hops, few transcontinental runs.
    mileage = rng.lognormal(mean=6.3, sigma=0.6, size=n)
    mileage = _clip(mileage, sizes["distance"])
    distance = sizes["distance"] - 1 - mileage  # longer distance preferred

    # Air time follows mileage at ~8 miles/minute plus congestion noise.
    air_minutes = mileage / 7.5 + rng.gamma(2.0, 6.0, size=n)
    air_time = _clip(air_minutes, sizes["air_time"])

    taxi_out = _clip(rng.gamma(3.2, 5.2, size=n), sizes["taxi_out"])
    taxi_in = _clip(rng.gamma(2.2, 3.2, size=n), sizes["taxi_in"])
    actual_elapsed = _clip(
        air_time + taxi_out + taxi_in + rng.integers(0, 12, size=n),
        sizes["actual_elapsed"],
    )

    # Departure delay: most flights on time, heavy tail of long delays.
    on_time = rng.random(n) < 0.62
    dep_delay = np.where(
        on_time,
        rng.integers(0, 12, size=n),
        rng.gamma(1.4, 38.0, size=n),
    )
    dep_delay = _clip(dep_delay, sizes["dep_delay"])
    arrival_delay = _clip(
        dep_delay + rng.normal(0.0, 9.0, size=n) + taxi_out * 0.18,
        sizes["arrival_delay"],
    )

    delay_group = _coarsen(
        arrival_delay, sizes["arrival_delay"], sizes["delay_group"]
    )
    distance_group = _coarsen(distance, sizes["distance"], sizes["distance_group"])

    columns = {
        "dep_delay": dep_delay,
        "taxi_out": taxi_out,
        "taxi_in": taxi_in,
        "actual_elapsed": actual_elapsed,
        "air_time": air_time,
        "distance": distance,
        "delay_group": delay_group,
        "distance_group": distance_group,
        "arrival_delay": arrival_delay,
    }
    names = [name for name, _ in RANKING_ATTRIBUTES]
    domain_sizes = dict(RANKING_ATTRIBUTES)

    derived_lookup = {name: (parent, size) for name, parent, size in DERIVED_GROUPS}
    for name in derived_groups:
        if name not in derived_lookup:
            raise ValueError(f"unknown derived group {name!r}")
        parent, size = derived_lookup[name]
        columns[name] = _coarsen(columns[parent], domain_sizes[parent], size)
        names.append(name)
        domain_sizes[name] = size

    pq_set = set(pq_attributes) | set(derived_groups)
    unknown = pq_set - set(names)
    if unknown:
        raise ValueError(f"unknown PQ attributes: {sorted(unknown)}")
    attributes = [
        Attribute(
            name,
            domain_sizes[name],
            InterfaceKind.PQ if name in pq_set else range_kind,
        )
        for name in names
    ]
    matrix = np.column_stack([columns[name] for name in names])
    # Carrier is a filtering attribute (14 US carriers in the extract).
    carrier = rng.integers(0, 14, size=n)
    schema = Schema(
        attributes + [Attribute("carrier", 14, InterfaceKind.FILTER)]
    )
    return Table(schema, matrix, {"carrier": carrier})


def flights_range_table(
    n: int,
    m: int,
    kind: InterfaceKind = InterfaceKind.RQ,
    seed: int = 0,
) -> Table:
    """A flights table restricted to its first ``m`` ranking attributes, all
    exposed as range attributes -- the workload of Figures 14 and 15."""
    if not 1 <= m <= len(RANKING_ATTRIBUTES):
        raise ValueError(f"m must be in 1..{len(RANKING_ATTRIBUTES)}")
    table = flights_table(n=n, seed=seed, pq_attributes=(), range_kind=kind)
    return table.project_ranking(range(m))


def flights_pq_table(
    n: int,
    m: int,
    seed: int = 0,
) -> Table:
    """A flights table of ``m`` PQ (group) attributes -- Figures 16, 17, 21.

    Uses the two native group attributes first, then derived groups.
    """
    derived_names = [name for name, _, _ in DERIVED_GROUPS]
    if not 2 <= m <= 2 + len(derived_names):
        raise ValueError(f"m must be in 2..{2 + len(derived_names)}")
    extra = tuple(derived_names[: m - 2])
    table = flights_table(
        n=n,
        seed=seed,
        pq_attributes=DEFAULT_PQ,
        derived_groups=extra,
    )
    names = [a.name for a in table.schema.ranking_attributes]
    keep = [names.index(name) for name in DEFAULT_PQ + extra]
    return table.project_ranking(keep)


def flights_mixed_table(
    n: int,
    num_range: int,
    num_point: int,
    range_kind: InterfaceKind = InterfaceKind.RQ,
    seed: int = 0,
) -> Table:
    """A flights table with ``num_range`` range and ``num_point`` PQ ranking
    attributes -- the mixed-interface workload of Figures 18 and 19."""
    range_names = [
        name for name, _ in RANKING_ATTRIBUTES if name not in DEFAULT_PQ
    ]
    if not 0 <= num_range <= len(range_names):
        raise ValueError(f"num_range must be in 0..{len(range_names)}")
    derived_names = [name for name, _, _ in DERIVED_GROUPS]
    if not 0 <= num_point <= 2 + len(derived_names):
        raise ValueError(f"num_point must be in 0..{2 + len(derived_names)}")
    point_names = list(DEFAULT_PQ[:num_point])
    extra = tuple(derived_names[: max(0, num_point - 2)])
    table = flights_table(
        n=n,
        seed=seed,
        pq_attributes=DEFAULT_PQ,
        range_kind=range_kind,
        derived_groups=extra,
    )
    names = [a.name for a in table.schema.ranking_attributes]
    keep_names = range_names[:num_range] + point_names + list(extra)
    keep = [names.index(name) for name in keep_names]
    return table.project_ranking(keep)
