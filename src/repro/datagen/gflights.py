"""Synthetic stand-in for the Google Flights (QPX API) scenario (§8.3).

The paper's live GF experiment: pick a random pair among the 25 busiest US
airports and a travel date, then discover all skyline one-way flights for a
traveller who prefers fewer Stops, a lower Price, a shorter
ConnectionDuration and a *later* DepartureTime (getting away after a day of
work).  The QPX interface exposes Stops, Price and ConnectionDuration as
one-ended (SQ) ranges and DepartureTime as a two-ended (RQ) range; the
default ranking is price ascending, and the free tier allows only 50 queries
per user per day.

Each route/date instance is an independent small table (tens to a few
hundred flights); the paper reports 4-11 skyline flights per instance.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..hiddendb.attributes import Attribute, InterfaceKind, Schema
from ..hiddendb.table import Table

#: The QPX free-tier rate limit highlighted by the paper.
DAILY_QUERY_LIMIT = 50

#: Domain sizes: stops 0..2, price in ~$31 buckets, connection time in
#: 40-minute steps, departure time in 2-hour windows across the day.  The
#: granularities are chosen so that instances land in the paper's regime:
#: 4-11 skyline flights, all discoverable within the 50-query daily quota
#: even at k = 1.
STOPS_DOMAIN = 3
PRICE_DOMAIN = 80
CONNECTION_DOMAIN = 12
DEPARTURE_DOMAIN = 8


def flight_schema() -> Schema:
    """The QPX-like search interface taxonomy of §8.3."""
    return Schema(
        [
            Attribute("stops", STOPS_DOMAIN, InterfaceKind.SQ),
            Attribute("price", PRICE_DOMAIN, InterfaceKind.SQ),
            Attribute("connection", CONNECTION_DOMAIN, InterfaceKind.SQ),
            Attribute("departure", DEPARTURE_DOMAIN, InterfaceKind.RQ),
            Attribute("origin", 25, InterfaceKind.FILTER),
            Attribute("destination", 25, InterfaceKind.FILTER),
            Attribute("date", 30, InterfaceKind.FILTER),
        ]
    )


def flight_instance(seed: int, n: int | None = None) -> Table:
    """One route/date search instance.

    ``departure`` is stored in preference space: 0 is the latest slot of the
    day (the traveller prefers leaving later).  Nonstop flights have no
    connection time; price correlates negatively with stops and mildly with
    departure convenience.
    """
    rng = np.random.default_rng(seed)
    if n is None:
        n = int(rng.integers(40, 260))
    stops = rng.choice(STOPS_DOMAIN, size=n, p=(0.35, 0.5, 0.15))
    connection_minutes = np.where(
        stops == 0,
        0,
        rng.gamma(3.0, 14.0, size=n) * stops,
    )
    connection = np.clip(
        connection_minutes / (480.0 / CONNECTION_DOMAIN), 0,
        CONNECTION_DOMAIN - 1,
    )
    departure_slot = rng.integers(0, DEPARTURE_DOMAIN, size=n)
    departure = DEPARTURE_DOMAIN - 1 - departure_slot  # later preferred
    base_fare = rng.lognormal(5.4, 0.2, size=n)
    fare = base_fare * (1.0 - 0.25 * stops)
    price = np.clip(fare / (2500.0 / PRICE_DOMAIN), 0, PRICE_DOMAIN - 1)
    matrix = np.column_stack(
        [
            stops.astype(np.int64),
            price.astype(np.int64),
            connection.astype(np.int64),
            departure.astype(np.int64),
        ]
    )
    route = np.random.default_rng(seed + 1)
    origin, destination = route.choice(25, size=2, replace=False)
    filters = {
        "origin": np.full(n, origin, dtype=np.int64),
        "destination": np.full(n, destination, dtype=np.int64),
        "date": np.full(n, int(route.integers(0, 30)), dtype=np.int64),
    }
    return Table(flight_schema(), matrix, filters)


def flight_instances(count: int, seed: int = 0) -> Iterator[Table]:
    """``count`` independent route/date instances (the paper samples 50)."""
    for index in range(count):
        yield flight_instance(seed * 10_000 + index)
