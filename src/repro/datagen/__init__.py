"""Workload generators standing in for the paper's datasets.

Every generator returns a :class:`~repro.hiddendb.table.Table` whose schema
reproduces the interface taxonomy, domain sizes and attribute correlations
of the corresponding data source in the paper (see DESIGN.md §2.3 for the
substitution rationale):

* :mod:`~repro.datagen.synthetic` -- micro-benchmark distributions
  (independent / correlated / anti-correlated, plus the Figure-6
  correlation sweep);
* :mod:`~repro.datagen.flights` -- the US DOT on-time extract;
* :mod:`~repro.datagen.diamonds` -- the Blue Nile catalogue;
* :mod:`~repro.datagen.gflights` -- Google Flights route/date instances;
* :mod:`~repro.datagen.autos` -- Yahoo! Autos listings.
"""

import numpy as np

from ..hiddendb.attributes import Attribute, Schema
from ..hiddendb.table import Table
from .adversarial import (
    priority_case_study_table,
    theorem1_skyline_size,
    theorem1_table,
)
from .autos import autos_table
from .diamonds import diamonds_table
from .flights import (
    flights_mixed_table,
    flights_pq_table,
    flights_range_table,
    flights_table,
)
from .gflights import DAILY_QUERY_LIMIT, flight_instance, flight_instances
from .mutations import CHURN_MIX, churn_ops, validate_ops
from .sqlio import sqlite_table, table_to_sqlite
from .synthetic import (
    anticorrelated,
    correlated,
    correlation_sweep_table,
    exact_skyline_table,
    independent,
)


def truncate_domains(table: Table, domain: int) -> Table:
    """Shrink every ranking domain to its ``domain`` best *occupied* values.

    The Figure-17 procedure: remove from each attribute's domain all but
    ``v`` values, along with the tuples holding a removed value.  Kept values
    are the ``v`` most-preferred values actually occurring in the data
    (remapped to ``0 .. v-1``), so the truncated table keeps the paper's
    "every domain value is occupied" property.
    """
    if domain < 1:
        raise ValueError(f"domain must be >= 1, got {domain}")
    matrix = table.matrix
    keep = np.ones(table.n, dtype=bool)
    remapped_columns = []
    new_sizes = []
    for column in range(table.m):
        occupied = np.unique(matrix[:, column])
        kept_values = occupied[:domain]
        new_sizes.append(max(len(kept_values), 1))
        keep &= np.isin(matrix[:, column], kept_values)
        mapping = np.full(
            int(occupied[-1]) + 1 if occupied.size else 1, -1, dtype=np.int64
        )
        mapping[kept_values] = np.arange(len(kept_values))
        remapped_columns.append(mapping)
    kept_rows = np.flatnonzero(keep)
    new_matrix = np.column_stack(
        [
            remapped_columns[column][matrix[kept_rows, column]]
            for column in range(table.m)
        ]
    ) if kept_rows.size else np.empty((0, table.m), dtype=np.int64)
    attributes = []
    ranking_position = 0
    for attribute in table.schema.attributes:
        if not attribute.is_ranking:
            attributes.append(attribute)
            continue
        attributes.append(
            Attribute(
                attribute.name,
                new_sizes[ranking_position],
                attribute.kind,
            )
        )
        ranking_position += 1
    filters = {
        attribute.name: np.asarray(
            [table.filter_value(attribute.name, int(rid)) for rid in kept_rows]
        )
        for attribute in table.schema.filtering_attributes
    }
    return Table(Schema(attributes), new_matrix, filters)


def rediscretize_domains(table: Table, domain: int) -> Table:
    """Re-discretise every ranking attribute into ``domain`` buckets.

    Order-preserving, equal-frequency bucketing: bucket 0 collects the most
    preferred values.  Unlike :func:`truncate_domains` this keeps every
    tuple, which makes it the cleaner knob for studying query cost as a pure
    function of the domain size (Figure 17) when attribute preferences
    conflict -- joint value-removal can otherwise empty the table.
    """
    if domain < 1:
        raise ValueError(f"domain must be >= 1, got {domain}")
    matrix = table.matrix
    columns = []
    new_sizes = []
    for column in range(table.m):
        values = matrix[:, column]
        occupied = np.unique(values)
        # An attribute with fewer occupied values than ``domain`` cannot be
        # stretched; it keeps one bucket per occupied value.
        effective = max(min(domain, len(occupied)), 1)
        new_sizes.append(effective)
        # Equal-frequency bucket boundaries over the occupied values.
        positions = np.searchsorted(occupied, values)
        buckets = positions * effective // max(len(occupied), 1)
        columns.append(np.minimum(buckets, effective - 1))
    new_matrix = (
        np.column_stack(columns)
        if table.n
        else np.empty((0, table.m), dtype=np.int64)
    )
    attributes = []
    ranking_position = 0
    for attribute in table.schema.attributes:
        if not attribute.is_ranking:
            attributes.append(attribute)
            continue
        attributes.append(
            Attribute(
                attribute.name,
                new_sizes[ranking_position],
                attribute.kind,
            )
        )
        ranking_position += 1
    filters = {
        attribute.name: np.asarray(
            [table.filter_value(attribute.name, rid) for rid in range(table.n)]
        )
        for attribute in table.schema.filtering_attributes
    }
    return Table(Schema(attributes), new_matrix, filters)


__all__ = [
    "CHURN_MIX",
    "DAILY_QUERY_LIMIT",
    "anticorrelated",
    "autos_table",
    "churn_ops",
    "correlated",
    "correlation_sweep_table",
    "diamonds_table",
    "exact_skyline_table",
    "flight_instance",
    "flight_instances",
    "flights_mixed_table",
    "flights_pq_table",
    "flights_range_table",
    "flights_table",
    "independent",
    "priority_case_study_table",
    "rediscretize_domains",
    "sqlite_table",
    "table_to_sqlite",
    "theorem1_skyline_size",
    "theorem1_table",
    "truncate_domains",
    "validate_ops",
]
