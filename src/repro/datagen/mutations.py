"""Deterministic churn: random mutation batches for live-endpoint tests.

The freshness plane needs one well-defined way to "age" a hidden
database -- the server's ``POST /api/mutate`` churn mode, the CLI's
``repro mutate --churn``, the parity tests and the freshness benchmarks
all draw from here, so a (table, frac, seed) triple names the exact same
mutation batch everywhere.

A churn batch models marketplace turnover: listings disappear
(deletes), change price/rating (updates), and new ones appear
(inserts), in a 30/40/30 split by default.  Values are drawn uniformly
from each attribute's domain, so churn can both create and destroy
skyline points.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

#: Default (delete, update, insert) weights of a churn batch.
CHURN_MIX = (0.3, 0.4, 0.3)


def _table_rids(table: Any) -> np.ndarray:
    rids = getattr(table, "rids", None)
    if rids is None and hasattr(table, "as_memory"):
        rids = table.as_memory().rids
    if rids is None:
        raise TypeError(
            f"cannot read stable rids from {type(table).__name__}"
        )
    return np.asarray(rids, dtype=np.int64)


def _random_values(rng: np.random.Generator, schema: Any) -> list[int]:
    return [
        int(rng.integers(0, attribute.domain_size))
        for attribute in schema.ranking_attributes
    ]


def _random_filters(
    rng: np.random.Generator, schema: Any, names: Sequence[str]
) -> dict[str, int]:
    return {
        name: int(rng.integers(0, schema[name].domain_size))
        for name in names
    }


def churn_ops(
    table: Any,
    frac: float,
    seed: int = 0,
    *,
    mix: tuple[float, float, float] = CHURN_MIX,
) -> list[dict[str, Any]]:
    """A deterministic mutation batch touching ``~frac * n`` tuples.

    ``mix`` is the (delete, update, insert) weight triple.  Deleted and
    updated rids are sampled without replacement from the table's live
    rid set, so the batch is always applicable; the op count is at least
    one per nonzero weight class (a tiny table still churns).  The batch
    depends only on the table's current state, ``frac`` and ``seed`` --
    callers on both sides of the wire can reproduce it exactly.
    """
    if not 0.0 < frac <= 1.0:
        raise ValueError(f"churn frac must be in (0, 1], got {frac}")
    weights = np.asarray(mix, dtype=float)
    if weights.min() < 0 or weights.sum() <= 0:
        raise ValueError(f"invalid churn mix {mix!r}")
    weights = weights / weights.sum()
    rng = np.random.default_rng(seed)
    rids = _table_rids(table)
    n = int(rids.size)
    if n == 0:
        raise ValueError("cannot churn an empty table")
    total = max(1, round(frac * n))
    deletes = int(round(total * weights[0])) if weights[0] else 0
    updates = int(round(total * weights[1])) if weights[1] else 0
    inserts = max(0, total - deletes - updates) if weights[2] else 0
    # Sample delete and update targets disjointly so one batch never
    # updates a tuple it also deletes.
    touched = min(deletes + updates, n)
    picked = rng.choice(rids, size=touched, replace=False)
    delete_rids = picked[:min(deletes, touched)]
    update_rids = picked[min(deletes, touched):]

    schema = table.schema
    filter_names = tuple(table.filter_names)
    ops: list[dict[str, Any]] = []
    for rid in delete_rids.tolist():
        ops.append({"op": "delete", "rid": int(rid)})
    for rid in update_rids.tolist():
        op: dict[str, Any] = {
            "op": "update",
            "rid": int(rid),
            "values": _random_values(rng, schema),
        }
        if filter_names:
            op["filters"] = _random_filters(rng, schema, filter_names)
        ops.append(op)
    for _ in range(inserts):
        op = {"op": "insert", "values": _random_values(rng, schema)}
        if filter_names:
            op["filters"] = _random_filters(rng, schema, filter_names)
        ops.append(op)
    return ops


def validate_ops(ops: Any) -> list[dict[str, Any]]:
    """Shape-check a wire-decoded mutation batch (server and CLI input).

    Verifies each item is a mapping with a known ``op`` and the fields
    that op requires; value/domain validation happens in
    ``Table.apply_mutations``.  Returns the ops as plain dicts.
    """
    if not isinstance(ops, (list, tuple)):
        raise ValueError("ops must be a list of mutation objects")
    checked: list[dict[str, Any]] = []
    for index, op in enumerate(ops):
        if not isinstance(op, Mapping):
            raise ValueError(f"ops[{index}] is not an object")
        kind = op.get("op")
        if kind not in ("insert", "delete", "update"):
            raise ValueError(
                f"ops[{index}].op is {kind!r}; "
                "expected insert, delete or update"
            )
        if kind == "insert" and "values" not in op:
            raise ValueError(f"ops[{index}]: insert requires values")
        if kind in ("delete", "update") and "rid" not in op:
            raise ValueError(f"ops[{index}]: {kind} requires rid")
        checked.append(dict(op))
    return checked


__all__ = ["CHURN_MIX", "churn_ops", "validate_ops"]
