"""Synthetic micro-benchmark data in the classic skyline-literature styles.

Three standard distributions (Borzsony et al., ICDE 2001) plus the
correlation-controlled generator behind Figure 6, where the attribute
correlation is the knob that sweeps the skyline size: strong positive
correlation collapses the skyline to a handful of tuples, strong negative
correlation inflates it.

All generators return a :class:`~repro.hiddendb.table.Table` whose ranking
values are integers in preference space.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..hiddendb.attributes import Attribute, InterfaceKind, Schema
from ..hiddendb.table import Table


def _make_table(
    matrix: np.ndarray,
    domain: int,
    kind: InterfaceKind,
    names: Sequence[str] | None = None,
) -> Table:
    m = matrix.shape[1]
    if names is None:
        names = [f"a{i}" for i in range(m)]
    schema = Schema([Attribute(name, domain, kind) for name in names])
    return Table(schema, matrix)


def independent(
    n: int,
    m: int,
    domain: int = 100,
    kind: InterfaceKind = InterfaceKind.RQ,
    seed: int = 0,
) -> Table:
    """Uniform i.i.d. values over ``[0, domain)`` on each attribute."""
    rng = np.random.default_rng(seed)
    return _make_table(rng.integers(0, domain, size=(n, m)), domain, kind)


def correlated(
    n: int,
    m: int,
    domain: int = 100,
    rho: float = 0.8,
    kind: InterfaceKind = InterfaceKind.RQ,
    seed: int = 0,
) -> Table:
    """Attributes sharing a common latent factor with strength ``rho``.

    ``rho`` in ``[-1, 1]``: positive values make good tuples good everywhere
    (small skylines), ``rho < 0`` produces the classic *anti-correlated*
    regime via alternating factor signs (large skylines).
    """
    if not -1.0 <= rho <= 1.0:
        raise ValueError(f"rho must be in [-1, 1], got {rho}")
    rng = np.random.default_rng(seed)
    shared = rng.standard_normal(n)
    strength = abs(rho)
    signs = np.ones(m)
    if rho < 0:
        signs[1::2] = -1.0  # alternate the factor sign across attributes
    latent = (
        np.sqrt(strength) * np.outer(shared, signs)
        + np.sqrt(1.0 - strength) * rng.standard_normal((n, m))
    )
    # Rank-based discretisation keeps each marginal uniform over the domain.
    ranks = latent.argsort(axis=0).argsort(axis=0)
    matrix = (ranks * domain) // max(n, 1)
    return _make_table(np.clip(matrix, 0, domain - 1), domain, kind)


def anticorrelated(
    n: int,
    m: int,
    domain: int = 100,
    kind: InterfaceKind = InterfaceKind.RQ,
    seed: int = 0,
) -> Table:
    """Tuples near the anti-diagonal plane: good on some attributes, bad on
    the rest -- the regime that maximises skyline sizes."""
    rng = np.random.default_rng(seed)
    base = rng.uniform(0.0, 1.0, size=n)
    noise = rng.normal(0.0, 0.1, size=(n, m))
    split = rng.dirichlet(np.ones(m), size=n)
    values = split * (base[:, None] * m) + noise
    scaled = np.clip(values / values.max(initial=1e-9), 0.0, 1.0)
    matrix = np.minimum((scaled * domain).astype(np.int64), domain - 1)
    return _make_table(matrix, domain, kind)


def correlation_sweep_table(
    n: int,
    m: int,
    rho: float,
    domain: int = 32,
    kind: InterfaceKind = InterfaceKind.SQ,
    seed: int = 0,
) -> Table:
    """The Figure-6 workload: fixed ``n``, correlation knob ``rho``.

    The paper controls the number of skyline tuples of a 2,000-tuple dataset
    by adjusting inter-attribute correlation (positive correlation yields
    fewer skyline tuples).  We reproduce that with the latent-factor
    generator; callers sweep ``rho`` from +1 down to -1 and plot against the
    *achieved* skyline size.
    """
    return correlated(n, m, domain=domain, rho=rho, kind=kind, seed=seed)


def exact_skyline_table(
    skyline_points: Sequence[Sequence[int]],
    filler: int,
    domain: int,
    kind: InterfaceKind = InterfaceKind.RQ,
    seed: int = 0,
) -> Table:
    """A table whose skyline is exactly ``skyline_points``.

    Filler tuples are sampled from the region strictly dominated by some
    skyline point, so they can never join the skyline.  Used by tests that
    need full control over ``|S|``.
    """
    points = np.asarray(skyline_points, dtype=np.int64)
    if points.ndim != 2:
        raise ValueError("skyline_points must be a 2-D collection")
    n_points, m = points.shape
    if n_points == 0:
        raise ValueError("need at least one skyline point")
    rng = np.random.default_rng(seed)
    rows = [points]
    for _ in range(filler):
        anchor = points[rng.integers(n_points)]
        room = domain - 1 - anchor
        if not np.any(room > 0):
            raise ValueError(
                f"skyline point {anchor} leaves no room for dominated filler"
            )
        offset = rng.integers(0, room + 1)
        bump = int(rng.integers(m))
        while room[bump] == 0:
            bump = int(rng.integers(m))
        offset[bump] = max(offset[bump], 1)  # strictly dominated
        rows.append((anchor + offset)[None, :])
    matrix = np.vstack(rows)
    table = _make_table(matrix, domain, kind)
    expected = {tuple(point) for point in points.tolist()}
    actual = {
        tuple(int(v) for v in matrix[i]) for i in table.skyline_indices()
    }
    if actual != expected:
        raise ValueError(
            "skyline_points must be mutually non-dominating: "
            f"expected {sorted(expected)}, skyline is {sorted(actual)}"
        )
    return table
