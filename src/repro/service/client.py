"""Resilient remote search endpoint: HTTP client for the hidden-DB service.

:class:`RemoteTopKInterface` implements the
:class:`~repro.hiddendb.endpoint.SearchEndpoint` protocol over HTTP, so any
registered discovery algorithm crawls a networked
:class:`~repro.service.server.HiddenDBServer` (or anything speaking the same
wire format) without per-algorithm changes.  It adds the two things a real
scraper needs on a flaky, rate-limited connection:

* **retry with exponential backoff** -- retriable failures (injected
  429/5xx faults, connection resets) are retried up to ``max_retries``
  times; terminal errors map back onto the simulator's exceptions
  (``budget_exceeded`` -> :class:`QueryBudgetExceeded`,
  ``unsupported_query`` -> :class:`UnsupportedQueryError`), so algorithm
  code cannot tell a remote run from a local one.  Retries are
  billing-safe: every logical query carries one ``X-Request-Id`` across
  all its attempts, and the server replays an already-billed answer for a
  seen id instead of charging it again;
* **an LRU query cache** -- identical conjunctive queries are answered
  client-side without touching the server.  Cache hits are *free*: they
  advance neither :attr:`queries_issued` nor the server's billing counter,
  which is a genuine query-cost optimisation under the paper's cost metric
  (the divide-and-conquer algorithms re-issue structurally shared queries,
  and a repeated crawl with a warm cache pays strictly less).

For the execution engine's pipelined dispatch the client additionally
offers **batched round trips** and **thread safety**: ``batch_query()``
sends a whole frontier wave as one ``POST /api/batch`` (per-item billing,
per-item fault retries with stable request ids, falling back to per-query
dispatch against servers that do not advertise the capability), and every
connection is thread-local while counters and the cache are lock-guarded,
so ``workers > 1`` strategies may drive one client from several threads.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import time
import urllib.parse
import uuid
from collections import OrderedDict
from typing import Any, Callable, Mapping, Sequence

from ..hiddendb.attributes import Schema
from ..hiddendb.errors import (
    HiddenDBError,
    QueryBudgetExceeded,
    UnsupportedQueryError,
)
from ..hiddendb.interface import QueryResult
from ..hiddendb.query import Query, query_fingerprint
from .server import ANONYMOUS_KEY, MAX_BATCH_ITEMS
from .wire import (
    decode_answer,
    decode_batch_answer,
    decode_schema,
    encode_batch_request,
    encode_query,
    endpoint_fingerprint,
)

#: Ceiling on a server-supplied ``Retry-After`` hint actually slept
#: (protection against a hostile or misconfigured header; the per-attempt
#: exponential backoff has its own much smaller ``backoff_cap``).
RETRY_AFTER_CAP = 30.0


def _parse_retry_after(value: "str | float | None") -> float | None:
    """``Retry-After`` header/body value -> seconds (``None`` if absent
    or malformed; negative values clamp to 0)."""
    if value is None:
        return None
    try:
        seconds = float(value)
    except (TypeError, ValueError):
        return None
    return max(0.0, seconds)


class RemoteServiceError(HiddenDBError):
    """The remote service could not be reached or kept failing.

    Raised when the transport fails terminally: connection refused with no
    retries left, retriable errors past ``max_retries``, or a malformed /
    unexpected response.  ``status`` carries the last HTTP status code seen,
    if any.
    """

    def __init__(self, message: str, status: int | None = None) -> None:
        super().__init__(message)
        self.status = status


class QueryClientCore:
    """Transport-independent half of a remote hidden-DB client.

    Everything that must behave *identically* whether the wire is driven
    by blocking sockets (:class:`RemoteTopKInterface`) or an asyncio
    event loop (:class:`~repro.service.aclient.AsyncRemoteTopKInterface`)
    lives here, once: the never-billed LRU query cache and crawl-store
    ledger mount, deterministic ``X-Request-Id`` replay derivation, error
    classification, budget-header tracking and the telemetry counters.
    Subclasses contribute only transport (``_request`` / ``_arequest``).
    """

    def _init_core(
        self,
        url: str,
        *,
        api_key: str,
        timeout: float,
        max_retries: int,
        backoff: float,
        backoff_cap: float,
        cache_size: int | None,
        ledger,
        replay_nonce: str | None,
    ) -> None:
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if cache_size is not None and cache_size < 0:
            raise ValueError(f"cache_size must be >= 0, got {cache_size}")
        self._url = url.rstrip("/")
        split = urllib.parse.urlsplit(self._url)
        if split.scheme not in ("http", "https") or not split.hostname:
            raise ValueError(f"url must be http(s)://host[:port], got {url!r}")
        self._scheme = split.scheme
        self._netloc = split.netloc
        self._host = split.hostname
        self._port = split.port or (443 if split.scheme == "https" else 80)
        #: Guards the billable/cache/retry counters and the LRU cache.
        self._lock = threading.Lock()
        self._api_key = api_key
        self._timeout = timeout
        self._max_retries = max_retries
        self._backoff = backoff
        self._backoff_cap = backoff_cap
        self._cache_size = cache_size or 0
        # Keyed by the canonical query key -- the same scheme as the
        # engine memo and the crawl-store ledger, so the layers can never
        # disagree about query identity.
        self._cache: OrderedDict[str, QueryResult] = OrderedDict()
        self._ledger = ledger
        self._replay_nonce = replay_nonce or None
        self._count = 0
        self._cache_hits = 0
        self._ledger_hits = 0
        self._retries = 0
        self._throttled = 0
        #: Pressure accumulator drained by ``take_throttle_signals()``:
        #: 429/503/timeout signals (and the max ``Retry-After`` seen)
        #: since the last drain, feeding the engine's AIMD window.
        self._pressure_events = 0
        self._pressure_retry_after = 0.0
        self._budget_remaining: int | None = None
        self._data_version = 0
        self._version_skews = 0
        self._schema: Schema | None = None
        self._k = 0
        self._service_name = ""
        self._ranking_label = ""
        self._supports_batch = False
        self._max_batch = MAX_BATCH_ITEMS
        #: Observability hook (:class:`repro.obs.RunObserver`), bound by a
        #: traced session via :meth:`attach_observer`; ``None`` keeps every
        #: instrumentation site a single is-not-None check.
        self._observer = None

    def _apply_metadata(self, metadata: Mapping[str, Any]) -> None:
        """Fold the ``/api/schema`` bootstrap payload into the client."""
        self._schema = decode_schema(metadata["schema"])
        self._k = int(metadata["k"])
        self._service_name = str(metadata.get("name", ""))
        self._ranking_label = str(metadata.get("ranking", ""))
        self._supports_batch = bool(metadata.get("batch", False))
        self._max_batch = int(metadata.get("max_batch", MAX_BATCH_ITEMS))
        self._data_version = int(metadata.get("data_version", 0))

    # ------------------------------------------------------------------
    # SearchEndpoint metadata surface
    # ------------------------------------------------------------------
    @property
    def schema(self) -> Schema:
        """The served search form's schema (fetched at construction)."""
        assert self._schema is not None
        return self._schema

    @property
    def k(self) -> int:
        """Top-k output limit of the remote search form."""
        return self._k

    @property
    def queries_issued(self) -> int:
        """Billable queries this client sent (cache hits are free)."""
        return self._count

    def cached_answer(self, query: Query) -> QueryResult | None:
        """This client's cached answer for ``query``, or ``None``.

        Consulted by the execution engine before it reserves session
        budget: cache hits are free under the paper's cost metric (they
        advance no billing counter), so they must not consume a run's
        query allowance either.  A hit counts toward :attr:`cache_hits`.
        """
        return self._cache_lookup(query)

    # ------------------------------------------------------------------
    # replay ids and cache plumbing (lock-guarded: workers share one client)
    # ------------------------------------------------------------------
    def set_replay_nonce(self, nonce: str | None) -> None:
        """Derive ``X-Request-Id`` deterministically from ``nonce`` + query.

        Called by a durable :class:`~repro.core.base.DiscoverySession`
        with its crawl session's persistent nonce: a resumed crawl then
        re-presents the exact ids of its crashed incarnation, and queries
        the server billed whose answers never reached the store are
        replayed free instead of billed twice.  ``None`` restores random
        per-query ids.
        """
        with self._lock:
            self._replay_nonce = nonce or None

    def attach_observer(self, observer) -> None:
        """Bind (or with ``None`` detach) a :class:`repro.obs.RunObserver`.

        Called -- duck-typed, like :meth:`set_replay_nonce` -- by a traced
        :class:`~repro.core.base.DiscoverySession`.  While bound, the
        client emits transport lifecycle events (attempt / retry / fault /
        cache and ledger hits / billed) and stamps every wire request with
        the observer's deterministic ``X-Trace-Id``, so server access logs
        correlate with the engine-side spans of the same logical query.
        """
        with self._lock:
            self._observer = observer

    def _trace_id(self, query: Query) -> str | None:
        """Wire trace id for ``query`` (``None`` with no observer bound)."""
        observer = self._observer
        if observer is None:
            return None
        return observer.trace_id(query)

    def _request_id(self, query: Query) -> str:
        nonce = self._replay_nonce
        if nonce is None:
            return uuid.uuid4().hex
        return f"{nonce}-{query_fingerprint(query)}"

    def _cache_lookup(self, query: Query) -> QueryResult | None:
        if not self._cache_size and self._ledger is None:
            return None
        key = query.canonical_key()
        with self._lock:
            cached = self._cache.get(key)
            if cached is not None:
                self._cache.move_to_end(key)
                self._cache_hits += 1
        if cached is not None:
            if self._observer is not None:
                self._observer.client_event("cache_hit", query)
            return cached
        if self._ledger is None:
            return None
        # Durable cache: an answer some earlier run/process paid for.
        persisted = self._ledger.get(query)
        if persisted is None:
            return None
        with self._lock:
            self._ledger_hits += 1
            self._cache_hits += 1
            if self._cache_size:
                self._cache[key] = persisted
                if len(self._cache) > self._cache_size:
                    self._cache.popitem(last=False)
        if self._observer is not None:
            self._observer.client_event("ledger_hit", query)
        return persisted

    def _cache_store(self, query: Query, result: QueryResult) -> None:
        if self._ledger is not None:
            self._ledger.put(query, result)
        if not self._cache_size:
            return
        with self._lock:
            self._cache[query.canonical_key()] = result
            if len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)

    def _count_billed(self, query: Query | None = None) -> None:
        with self._lock:
            self._count += 1
        # "client_billed", not "billed": the engine's note_answer hook owns
        # the canonical billed span, which stays 1:1 with total_cost --
        # this side records the counter only.
        if self._observer is not None:
            self._observer.client_event("client_billed", query, span=False)

    def _count_retry(
        self, query: Query | None = None, trace_id: str | None = None
    ) -> None:
        with self._lock:
            self._retries += 1
        if self._observer is not None:
            self._observer.client_event("retry", query, trace_id=trace_id)

    def _note_throttle(self, exc: "_Retriable") -> None:
        """Record a throttle-class failure (429/503/transport timeout).

        Only these count as *window pressure* for the adaptive engine;
        other retriable statuses (502/504 relay hiccups) are retried but
        do not shrink the in-flight window.

        Only a 429's ``Retry-After`` becomes a *dispatch hold-off*: it
        names a token-refill deadline the whole client should pace on.
        A load-shed 503 is a transient concurrency signal -- answered by
        shrinking the window, not by stalling it -- so its hint floors
        this request's retry sleep but never gates the other workers.
        """
        if exc.status not in (429, 503) and exc.status is not None:
            return
        retry_after = exc.retry_after if exc.status == 429 else None
        with self._lock:
            self._throttled += 1
            self._pressure_events += 1
            if (
                retry_after is not None
                and retry_after > self._pressure_retry_after
            ):
                self._pressure_retry_after = retry_after

    def take_throttle_signals(self) -> tuple[int, float]:
        """Drain pressure accumulated since the last call.

        Returns ``(count, max_retry_after_seconds)``; polled by the
        adaptive drain (:mod:`repro.core.adaptive`) between merges.  The
        cumulative total stays readable as :attr:`throttled`.
        """
        with self._lock:
            count = self._pressure_events
            retry_after = self._pressure_retry_after
            self._pressure_events = 0
            self._pressure_retry_after = 0.0
        return count, retry_after

    def _retry_delay(self, attempt: int, hint: "float | None") -> float:
        """Seconds to sleep before retry ``attempt`` (1-based).

        The server's ``Retry-After`` is honored as a *floor* -- sleeping
        less would only harvest another 429 -- while the exponential
        backoff still escalates underneath it, so repeated failures of
        one request back off even against a server that keeps naming
        tiny deadlines.
        """
        backoff = min(self._backoff * 2 ** (attempt - 1), self._backoff_cap)
        if hint is None:
            return backoff
        return max(backoff, min(hint, RETRY_AFTER_CAP))

    def _note_budget(self, headers: Mapping[str, str]) -> None:
        remaining = headers.get("X-Budget-Remaining")
        if remaining is None:
            remaining = headers.get("x-budget-remaining")
        if remaining is not None:
            try:
                value = int(remaining)
            except ValueError:
                return
            with self._lock:
                self._budget_remaining = value

    def _note_data_version(self, headers: Mapping[str, str]) -> None:
        """Track the endpoint's ``X-Data-Version`` advertisement.

        A version ahead of the one we tracked means the hidden database
        mutated under us: cached answers may be stale, so the LRU cache
        is dropped (ledger views stay epoch-pinned and go stale-silent on
        their own).  Detection is free -- the header rides on answers we
        paid for anyway.  Replayed answers may carry the *older* version
        they were billed under; those never roll the tracked version back.
        """
        advertised = headers.get("X-Data-Version")
        if advertised is None:
            advertised = headers.get("x-data-version")
        if advertised is None:
            return
        try:
            version = int(advertised)
        except ValueError:
            return
        stale = False
        with self._lock:
            if version > self._data_version:
                self._data_version = version
                self._version_skews += 1
                self._cache.clear()
                stale = True
        if stale and self._observer is not None:
            self._observer.client_event(
                "data_version_skew", version=version
            )

    def _classify_payload(
        self, status: int, payload: Mapping[str, Any]
    ) -> Exception:
        """Decoded error body -> retry / simulator exception (shared by the
        transport layer and the per-item handling of batch answers)."""
        error = payload.get("error", "")
        if error == "budget_exceeded":
            limit = payload.get("limit")
            return QueryBudgetExceeded(int(limit) if limit is not None else 0)
        if error == "unsupported_query":
            return UnsupportedQueryError(
                payload.get("message", f"HTTP {status}")
            )
        if payload.get("retriable") or status in (429, 502, 503, 504):
            return _Retriable(
                f"HTTP {status} ({error or 'no detail'})",
                status=status,
                # Batch items carry the shaping deadline in the body
                # (per-item headers do not survive the batch envelope);
                # for whole responses the transport overrides this with
                # the Retry-After header when present.
                retry_after=_parse_retry_after(payload.get("retry_after")),
            )
        return RemoteServiceError(
            f"HTTP {status}: {payload.get('message', error) or 'unexpected error'}",
            status=status,
        )

    def _classify(self, status: int, raw: bytes) -> Exception:
        """Map an HTTP error response onto retry / simulator semantics."""
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            payload = {}
        return self._classify_payload(status, payload)

    # ------------------------------------------------------------------
    # client-side telemetry
    # ------------------------------------------------------------------
    @property
    def url(self) -> str:
        """Base URL of the remote service."""
        return self._url

    @property
    def api_key(self) -> str:
        """Billing identity this client queries under."""
        return self._api_key

    @property
    def service_name(self) -> str:
        """Name the service reported at construction."""
        return self._service_name

    @property
    def ranking_label(self) -> str:
        """Ranking-function label the service reported (endpoint identity)."""
        return self._ranking_label

    @property
    def endpoint_fingerprint(self) -> str:
        """Identity hash of the connected endpoint, derived client-side.

        Computed from the bootstrap metadata (schema, ``k``, name,
        ranking) with the same scheme the server and the crawl store use,
        so it equals the server's ``/healthz`` fingerprint exactly when
        both sides agree on what is being served.
        """
        if self._schema is None:
            raise RemoteServiceError("client holds no schema metadata yet")
        return endpoint_fingerprint(
            self._schema, self._k, self._service_name, self._ranking_label
        )

    @property
    def cache_hits(self) -> int:
        """Queries answered from the local cache or ledger (never billed)."""
        return self._cache_hits

    @property
    def ledger_hits(self) -> int:
        """Subset of :attr:`cache_hits` answered by the persistent ledger."""
        return self._ledger_hits

    @property
    def cache_size(self) -> int:
        """Configured cache capacity (0 = caching disabled)."""
        return self._cache_size

    @property
    def retries(self) -> int:
        """Transport retries performed so far (a health signal, not a cost)."""
        return self._retries

    @property
    def throttled(self) -> int:
        """Cumulative 429/503/timeout signals seen (window pressure)."""
        return self._throttled

    @property
    def budget_remaining(self) -> int | None:
        """Server-reported remaining budget (``None`` until known/unlimited)."""
        return self._budget_remaining

    @property
    def data_version(self) -> int:
        """Latest data version the endpoint advertised to this client."""
        return self._data_version

    @property
    def version_skews(self) -> int:
        """Times the endpoint's data version moved ahead mid-session
        (each one dropped the client-side cache)."""
        return self._version_skews

    @property
    def supports_batch(self) -> bool:
        """Whether the service advertises the ``/api/batch`` capability."""
        return self._supports_batch

    def clear_cache(self) -> None:
        """Drop every cached answer (hit statistics are kept)."""
        with self._lock:
            self._cache.clear()

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self._url}, key={self._api_key!r}, "
            f"issued={self._count}, cache_hits={self._cache_hits})"
        )


class RemoteTopKInterface(QueryClientCore):
    """A :class:`SearchEndpoint` speaking HTTP to a hidden-DB service.

    Parameters
    ----------
    url:
        Base URL of the service (e.g. ``http://127.0.0.1:8080``).  The
        schema and ``k`` are fetched once at construction.
    api_key:
        Billing identity sent as ``X-Api-Key`` (per-key budgets are enforced
        server-side).
    timeout:
        Per-request socket timeout in seconds.
    max_retries:
        Retries per query on retriable failures before giving up with
        :class:`RemoteServiceError`.
    backoff / backoff_cap:
        Exponential backoff: retry ``i`` sleeps ``min(backoff * 2**i,
        backoff_cap)`` seconds.
    cache_size:
        Capacity of the client-side LRU query cache; ``None`` or ``0``
        disables caching (the default -- parity runs must bill every query).
    ledger:
        Optional persistent query ledger (a
        :class:`~repro.store.QueryLedger` view of a crawl store) mounted
        as this client's durable never-billed cache: where the LRU forgets
        on restart, ledgered answers survive process restarts and are
        shared across clients.  Hits are free exactly like LRU hits; every
        billed answer is written through.
    replay_nonce:
        When set, ``X-Request-Id`` values are derived deterministically
        from this nonce plus the query's canonical key instead of drawn at
        random.  A crawl resumed after a crash re-presents the ids of
        queries billed but lost in flight, and the server *replays* those
        answers instead of billing them twice.  Durable sessions set this
        via :meth:`set_replay_nonce`.
    sleep:
        Injection point for the backoff sleeper (tests pass a no-op).
    """

    def __init__(
        self,
        url: str,
        *,
        api_key: str = ANONYMOUS_KEY,
        timeout: float = 30.0,
        max_retries: int = 8,
        backoff: float = 0.05,
        backoff_cap: float = 2.0,
        cache_size: int | None = None,
        ledger=None,
        replay_nonce: str | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self._init_core(
            url,
            api_key=api_key,
            timeout=timeout,
            max_retries=max_retries,
            backoff=backoff,
            backoff_cap=backoff_cap,
            cache_size=cache_size,
            ledger=ledger,
            replay_nonce=replay_nonce,
        )
        # Connections are thread-local (HTTPConnection is not thread-safe;
        # pipelined strategies call query() from several worker threads);
        # every opened connection is also tracked for close().
        self._local = threading.local()
        self._conns: list[http.client.HTTPConnection] = []
        self._sleep = sleep
        self._apply_metadata(self._request("GET", "/api/schema"))

    # ------------------------------------------------------------------
    # SearchEndpoint surface
    # ------------------------------------------------------------------
    def query(self, query: Query) -> QueryResult:
        """Issue one query over the wire (or answer it from the cache).

        Raises
        ------
        UnsupportedQueryError
            The remote interface rejected the query shape.
        QueryBudgetExceeded
            This API key's server-side budget is exhausted.
        RemoteServiceError
            The service stayed unreachable/faulty past ``max_retries``.
        """
        cached = self._cache_lookup(query)
        if cached is not None:
            return cached
        # One request id per *logical* query, reused across retries: the
        # server replays an already-billed answer for a seen id, so a
        # response lost after billing is never billed twice.  Durable
        # crawls derive the id from the session nonce + canonical query
        # key, extending the same guarantee across process restarts.
        payload = self._request(
            "POST",
            "/api/query",
            {"query": encode_query(query)},
            request_id=self._request_id(query),
            trace_id=self._trace_id(query),
        )
        rows, overflow, sequence = decode_answer(payload)
        self._count_billed(query)
        result = QueryResult(
            query=query, rows=rows, overflow=overflow, sequence=sequence
        )
        self._cache_store(query, result)
        return result

    def batch_query(self, queries: Sequence[Query]) -> tuple[QueryResult, ...]:
        """Answer several independent queries in one ``/api/batch`` trip.

        Per-item semantics match :meth:`query` exactly: cache hits are
        free, each billed item advances :attr:`queries_issued` by one, and
        items that draw injected faults are retried (in ever smaller
        follow-up batches) under stable request ids so the server never
        bills an item twice.  Against a server that does not advertise the
        batch capability this degrades to per-query dispatch.

        Raises the first terminal per-item failure by batch position, with
        every answer obtained (and billed) attached as
        ``exc.partial_results`` -- a tuple aligned with ``queries`` whose
        ``None`` holes mark the items that were *not* answered or billed
        -- so callers can still account for what they paid for.
        """
        queries = list(queries)
        if not queries:
            return ()
        results: list[QueryResult | None] = [None] * len(queries)
        pending: list[int] = []
        for index, query in enumerate(queries):
            cached = self._cache_lookup(query)
            if cached is not None:
                results[index] = cached
            else:
                pending.append(index)
        if pending and not self._supports_batch:
            try:
                for index in pending:
                    results[index] = self.query(queries[index])
            except HiddenDBError as exc:
                exc.partial_results = tuple(results)
                raise
            return tuple(results)
        ids = {index: self._request_id(queries[index]) for index in pending}
        failures: dict[int, Exception] = {}
        attempt = 0
        while pending:
            retry: list[int] = []
            retry_after: float | None = None
            for start in range(0, len(pending), self._max_batch):
                chunk = pending[start : start + self._max_batch]
                try:
                    payload = self._request(
                        "POST",
                        "/api/batch",
                        encode_batch_request(
                            [queries[i] for i in chunk],
                            [ids[i] for i in chunk],
                        ),
                    )
                    outcomes = decode_batch_answer(payload, len(chunk))
                except HiddenDBError as exc:
                    # Transport failed terminally for this chunk; answers
                    # from earlier chunks/rounds were already folded into
                    # ``results`` and must not be lost.
                    exc.partial_results = tuple(results)
                    raise
                except ValueError as exc:
                    wrapped = RemoteServiceError(
                        f"malformed batch answer: {exc}"
                    )
                    wrapped.partial_results = tuple(results)
                    raise wrapped from None
                for index, (status, body) in zip(chunk, outcomes):
                    if status < 400:
                        rows, overflow, sequence = decode_answer(body)
                        result = QueryResult(
                            query=queries[index],
                            rows=rows,
                            overflow=overflow,
                            sequence=sequence,
                        )
                        self._count_billed(queries[index])
                        self._cache_store(queries[index], result)
                        results[index] = result
                        continue
                    exc = self._classify_payload(status, body)
                    if isinstance(exc, _Retriable):
                        self._note_throttle(exc)
                        if exc.retry_after is not None and (
                            retry_after is None
                            or exc.retry_after > retry_after
                        ):
                            retry_after = exc.retry_after
                        retry.append(index)
                    else:
                        failures[index] = exc
            if not retry:
                break
            if attempt >= self._max_retries:
                for index in retry:
                    failures[index] = RemoteServiceError(
                        f"batch item still failing after "
                        f"{self._max_retries} retries",
                    )
                break
            self._count_retry()
            self._sleep(self._retry_delay(attempt + 1, retry_after))
            attempt += 1
            pending = retry
        if failures:
            exc = failures[min(failures)]
            # Aligned-with-holes: billed answers (including ones *after*
            # the first failing position) stay attached; failed or unsent
            # items stay None and are the only unbilled slots.
            exc.partial_results = tuple(results)
            raise exc
        return tuple(results)  # type: ignore[return-value]

    def server_stats(self) -> dict[str, Any]:
        """The service's ``/api/stats`` payload (billing counters)."""
        return self._request("GET", "/api/stats")

    def healthz(self) -> dict[str, Any]:
        """The service's ``/healthz`` payload (liveness + fingerprint).

        Never billed -- this is how a coordinator verifies a backend is
        alive and serving the expected endpoint identity for free.
        """
        return self._request("GET", "/healthz")

    def refresh_data_version(self) -> int:
        """Re-read the endpoint's data version over ``/healthz`` (free).

        Folds the advertised version into the tracked one (dropping the
        cache on skew) and returns it -- the cheap per-mount staleness
        probe the coordinator and delta crawls use.
        """
        payload = self.healthz()
        self._note_data_version(
            {"X-Data-Version": str(payload.get("data_version", 0))}
        )
        return self._data_version

    def mutate(
        self,
        ops: Sequence[Mapping[str, Any]] | None = None,
        *,
        churn: Mapping[str, Any] | None = None,
    ) -> dict[str, Any]:
        """Apply an operator mutation batch via ``POST /api/mutate``.

        Exactly one of ``ops`` (explicit insert/delete/update batch) or
        ``churn`` (``{"frac": F, "seed": S}``, drawn server-side) must be
        given.  Unbilled.  Returns the server's ``{"applied",
        "data_version"}`` payload after folding the new version into the
        tracked one (which drops the local cache).
        """
        if (ops is None) == (churn is None):
            raise ValueError("exactly one of ops or churn is required")
        body: dict[str, Any] = (
            {"ops": list(ops)} if ops is not None else {"churn": dict(churn)}
        )
        payload = self._request("POST", "/api/mutate", body)
        self._note_data_version(
            {"X-Data-Version": str(payload.get("data_version", 0))}
        )
        return payload

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        body: Mapping[str, Any] | None = None,
        request_id: str | None = None,
        trace_id: str | None = None,
    ) -> dict[str, Any]:
        last_status: int | None = None
        last_reason = "unknown error"
        retry_after: float | None = None
        for attempt in range(self._max_retries + 1):
            if attempt:
                self._count_retry(trace_id=trace_id)
                self._sleep(self._retry_delay(attempt, retry_after))
            try:
                return self._send(method, path, body, request_id, trace_id)
            except _Retriable as exc:
                last_status = exc.status
                last_reason = exc.reason
                retry_after = exc.retry_after
                self._note_throttle(exc)
                if self._observer is not None:
                    self._observer.client_event(
                        "fault", trace_id=trace_id, status=exc.status,
                        path=path,
                    )
        raise RemoteServiceError(
            f"{method} {path} still failing after {self._max_retries} "
            f"retries: {last_reason}",
            status=last_status,
        )

    def _connection(self) -> http.client.HTTPConnection:
        """This thread's persistent keep-alive connection (opened lazily).

        One crawl issues thousands of sequential queries; reusing one
        HTTP/1.1 connection per thread avoids paying connect/teardown per
        query (the server keeps connections alive for exactly this
        reason).  Connections are thread-local because pipelined
        strategies issue queries from several worker threads at once.
        """
        conn = getattr(self._local, "conn", None)
        if conn is None:
            factory = (
                http.client.HTTPSConnection
                if self._scheme == "https"
                else http.client.HTTPConnection
            )
            conn = factory(self._netloc, timeout=self._timeout)
            conn.connect()
            # Disable Nagle: each query is one small request waiting on one
            # small response, the exact pattern Nagle + delayed ACK turns
            # into ~40ms/query stalls on a keep-alive connection.
            conn.sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
            self._local.conn = conn
            with self._lock:
                self._conns.append(conn)
        return conn

    def _drop_connection(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None
            with self._lock:
                if conn in self._conns:
                    self._conns.remove(conn)

    def close(self) -> None:
        """Close every opened connection (reopened on the next request)."""
        self._local.conn = None
        with self._lock:
            conns, self._conns = self._conns, []
        for conn in conns:
            conn.close()

    def __enter__(self) -> "RemoteTopKInterface":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _send(
        self,
        method: str,
        path: str,
        body: Mapping[str, Any] | None,
        request_id: str | None = None,
        trace_id: str | None = None,
    ) -> dict[str, Any]:
        data = None if body is None else json.dumps(body).encode("utf-8")
        headers = {
            "Content-Type": "application/json",
            "X-Api-Key": self._api_key,
        }
        if request_id is not None:
            headers["X-Request-Id"] = request_id
        if trace_id is not None:
            headers["X-Trace-Id"] = trace_id
        if self._observer is not None:
            self._observer.client_event(
                "attempt", trace_id=trace_id, path=path
            )
        try:
            conn = self._connection()
            conn.request(method, path, body=data, headers=headers)
            response = conn.getresponse()
            status = response.status
            raw = response.read()
            response_headers = response.headers
        except (OSError, http.client.HTTPException) as exc:
            # Transient transport failure (refused mid-restart, reset,
            # timeout, half-closed keep-alive): reconnect on retry.
            self._drop_connection()
            raise _Retriable(str(exc) or type(exc).__name__, status=None) from None
        # Budget headers arrive on error responses too (a 429 reports 0
        # remaining); record them before classifying the status.
        self._note_budget(response_headers)
        self._note_data_version(response_headers)
        if status >= 400:
            exc = self._classify(status, raw)
            if isinstance(exc, _Retriable):
                hinted = _parse_retry_after(
                    response_headers.get("Retry-After")
                )
                if hinted is not None:
                    exc.retry_after = hinted
            raise exc
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise RemoteServiceError(
                f"malformed response body from {method} {path}: {exc}",
                status=status,
            ) from None

class _Retriable(Exception):
    """Internal: a failure worth another attempt.

    ``retry_after`` carries the server's honest shaping deadline in
    seconds (header on whole responses, ``retry_after`` body field on
    batch items), ``None`` when the server named none.
    """

    def __init__(
        self,
        reason: str,
        status: int | None,
        retry_after: float | None = None,
    ) -> None:
        super().__init__(reason)
        self.reason = reason
        self.status = status
        self.retry_after = retry_after


__all__ = ["QueryClientCore", "RemoteServiceError", "RemoteTopKInterface"]
