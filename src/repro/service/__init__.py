"""Networked hidden-database service: serve a table, crawl it remotely.

The paper's algorithms target *real* web databases reached through
rate-limited top-k search forms; this subpackage recreates those conditions
for the in-process simulator so discovery can run over the wire:

* :mod:`repro.service.server` -- :class:`HiddenDBServer`, a threaded stdlib
  HTTP server exposing any :class:`~repro.hiddendb.table.Table` + ranker as
  a JSON top-k search API with per-API-key query budgets and configurable
  fault/latency injection;
* :mod:`repro.service.client` -- :class:`RemoteTopKInterface`, a
  :class:`~repro.hiddendb.endpoint.SearchEndpoint` over HTTP with
  retry/backoff against injected faults and an optional LRU query cache
  whose hits are free (they never reach the server's billing counter);
* :mod:`repro.service.aclient` -- :class:`AsyncRemoteTopKInterface`, the
  asyncio twin of the client: the same wire format, billing semantics,
  cache/ledger mount and replay ids, but over non-blocking pooled
  connections on one event loop, built for
  ``DiscoveryConfig(strategy="async")``'s very wide dispatch windows;
* :mod:`repro.service.wire` -- the JSON wire format shared by both sides;
* :mod:`repro.service.faults` -- deterministic, thread-safe fault/latency
  injection used by the server.

Because every discovery algorithm is written against the
:class:`~repro.hiddendb.endpoint.SearchEndpoint` protocol, a
``RemoteTopKInterface`` drops into :class:`repro.Discoverer` unchanged::

    from repro import Discoverer
    from repro.service import HiddenDBServer, RemoteTopKInterface

    with HiddenDBServer(table, k=10) as server:
        remote = RemoteTopKInterface(server.url, cache_size=1024)
        result = Discoverer().run(remote)

The CLI mirrors this: ``repro serve --dataset diamonds`` in one terminal,
``repro discover --url http://127.0.0.1:8080`` in another.
"""

from .aclient import AsyncRemoteTopKInterface
from .client import QueryClientCore, RemoteServiceError, RemoteTopKInterface
from .faults import FaultConfig, FaultInjector
from .server import (
    HiddenDBServer,
    KeyUsage,
    ServerStats,
    ServiceStartupError,
)

__all__ = [
    "AsyncRemoteTopKInterface",
    "FaultConfig",
    "FaultInjector",
    "HiddenDBServer",
    "KeyUsage",
    "QueryClientCore",
    "RemoteServiceError",
    "RemoteTopKInterface",
    "ServerStats",
    "ServiceStartupError",
]
