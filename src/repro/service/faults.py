"""Deterministic fault and latency injection for the hidden-DB server.

Real hidden-web databases answer slowly and fail sporadically: scrapers see
429s from rate limiters, 5xxs from overloaded backends, and latency jitter
from everything in between.  :class:`FaultInjector` reproduces those
conditions on the query endpoint so the client's retry/backoff logic (and
any algorithm running over it) can be exercised reproducibly.

The injector is seeded and draws from one :class:`random.Random` under a
lock, so a given seed yields one deterministic fault sequence even when the
threaded server interleaves requests (the *assignment* of faults to
concurrent requests still depends on arrival order, as it would in the
wild).
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass


@dataclass(frozen=True)
class FaultConfig:
    """Fault/latency model applied to every query request.

    Parameters
    ----------
    error_rate:
        Probability in ``[0, 1]`` that a query request is answered with an
        injected, retriable HTTP error instead of being executed.  Injected
        errors are never billed against the caller's query budget.
    error_codes:
        HTTP status codes injected errors are drawn from (uniformly).
    latency:
        ``(lo, hi)`` bounds in seconds; every query request sleeps a uniform
        draw from this interval before being processed.
    seed:
        Seed of the injector's private RNG.
    """

    error_rate: float = 0.0
    error_codes: tuple[int, ...] = (429, 503)
    latency: tuple[float, float] = (0.0, 0.0)
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.error_rate <= 1.0:
            raise ValueError(f"error_rate must be in [0, 1], got {self.error_rate}")
        if self.error_rate > 0.0 and not self.error_codes:
            raise ValueError("error_rate > 0 requires at least one error code")
        lo, hi = self.latency
        if lo < 0.0 or hi < lo:
            raise ValueError(f"latency bounds must satisfy 0 <= lo <= hi, got {self.latency}")

    @property
    def active(self) -> bool:
        """Whether this config injects anything at all."""
        return self.error_rate > 0.0 or self.latency[1] > 0.0


class FaultInjector:
    """Thread-safe draw of ``(delay_seconds, error_code | None)`` pairs."""

    def __init__(self, config: FaultConfig) -> None:
        self._config = config
        self._rng = random.Random(config.seed)
        self._lock = threading.Lock()
        self._injected = 0

    @property
    def config(self) -> FaultConfig:
        """The fault model this injector draws from."""
        return self._config

    @property
    def injected(self) -> int:
        """Number of errors injected so far."""
        return self._injected

    def draw(self) -> tuple[float, int | None]:
        """One fault decision: seconds to sleep, and an error code or ``None``.

        The latency draw happens before the error draw so a fixed seed
        produces the same decision sequence regardless of the configured
        bounds.
        """
        config = self._config
        with self._lock:
            lo, hi = config.latency
            delay = self._rng.uniform(lo, hi) if hi > 0.0 else 0.0
            code: int | None = None
            if config.error_rate > 0.0 and self._rng.random() < config.error_rate:
                code = config.error_codes[
                    self._rng.randrange(len(config.error_codes))
                ]
                self._injected += 1
        return delay, code


__all__ = ["FaultConfig", "FaultInjector"]
