"""HTTP server exposing a hidden database as a JSON top-k search API.

:class:`HiddenDBServer` wraps any :class:`~repro.hiddendb.table.Table` plus a
domination-consistent ranker in a stdlib :class:`ThreadingHTTPServer`, so the
simulator can be crawled the way the paper's target sites are: over the
network, through a rate-limited search form, by concurrent clients.

Routes (all bodies JSON):

=========================  =====================================================
``GET  /api/schema``       public search-form metadata: schema, ``k``, name
``POST /api/query``        one conjunctive query; billed per ``X-Api-Key``
``POST /api/batch``        up to ``MAX_BATCH_ITEMS`` queries in one round
                           trip; billed, validated and fault-injected per
                           item (latency is drawn per item but slept once,
                           at the per-batch maximum -- one round trip)
``GET  /api/stats``        billing counters (total, per key incl. configured
                           budgets and remaining headroom, faults injected),
                           uptime, in-flight requests, per-key HTTP totals
``GET  /metrics``          the same counters plus a request-latency
                           histogram, in Prometheus text format
``POST /api/mutate``       operator action: apply an insert/delete/update
                           batch (``{"ops": [...]}``) or deterministic
                           churn (``{"churn": {"frac", "seed"}}``) to the
                           served table; unbilled, bumps ``data_version``
``POST /api/reset``        ops/test helper: clear billing counters
``GET  /healthz``          liveness probe carrying the endpoint fingerprint
                           (CI boot check, coordinator shard verification)
=========================  =====================================================

Live databases advertise a monotonic ``data_version`` (the table's
mutation counter) in ``/api/schema``, ``/api/stats``, ``/healthz`` and as
an ``X-Data-Version`` header on every fresh answer, so clients detect
endpoint churn without a billed probe.  The fingerprint deliberately does
*not* fold the version in: identity ("same database?") and freshness
("same contents?") are separate questions.

The query endpoint reproduces the in-process
:class:`~repro.hiddendb.interface.TopKInterface` contract exactly --
validate first, then check the caller's budget, then bill and execute -- so
a remote run is query-for-query identical to a local one.  Error responses
carry ``{"error", "retriable"}``; injected faults (configured via
:class:`~repro.service.faults.FaultConfig`) are retriable and never billed,
while ``budget_exceeded`` (HTTP 429) and ``unsupported_query`` (HTTP 400)
are terminal and map back onto the simulator's exceptions client-side.

Billing is retry-safe: a request carrying an ``X-Request-Id`` header that
was already billed gets its answer *replayed* instead of re-executed, so a
client whose response was lost in transit (timeout, connection reset after
the server charged the query) can retry without being billed twice.
"""

from __future__ import annotations

import errno
import json
import logging
import sys
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Mapping

from ..datagen.mutations import churn_ops, validate_ops
from ..hiddendb.errors import HiddenDBError, UnsupportedQueryError
from ..hiddendb.dataplane import default_ranker, make_engine
from ..hiddendb.ranking import Ranker
from ..hiddendb.table import Table
from ..obs import MetricsRegistry, render_prometheus
from ..obs.exposition import CONTENT_TYPE as METRICS_CONTENT_TYPE
from .faults import FaultConfig, FaultInjector
from .wire import (
    decode_query,
    encode_answer,
    encode_batch_item,
    encode_schema,
    endpoint_fingerprint,
)

logger = logging.getLogger("repro.service")

#: Billing identity assumed when a request carries no ``X-Api-Key`` header.
ANONYMOUS_KEY = "anonymous"

#: Billed answers remembered for idempotent replay, per server.
REPLAY_CAPACITY = 4096

#: Longest a duplicate request waits for the in-flight original to finish
#: before being processed as fresh (only reachable when injected latency
#: exceeds the client's timeout).
INFLIGHT_WAIT_SECONDS = 60.0

#: Most queries accepted in one ``/api/batch`` round trip.
MAX_BATCH_ITEMS = 256

#: ``Retry-After`` seconds named on load-shedding 503s (the concurrency
#: cap has no token-refill deadline to be honest about, so the server
#: names a short fixed pause instead).
LOAD_SHED_RETRY_AFTER = 0.05


class ServiceStartupError(HiddenDBError):
    """The service could not start (e.g. its port is already taken).

    Maps low-level socket errors at bind time onto one actionable
    message, instead of a raw ``OSError`` traceback.
    """


class _QuietThreadingHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer tuned for crawler traffic.

    * no tracebacks on client disconnects: a crawler that is killed (or
      times out) mid-request resets its sockets; the stdlib default
      prints a full traceback per connection, which buries real errors.
      Disconnects are routine for this service -- the durable-crawl tests
      SIGKILL clients on purpose -- so they are logged at debug level;
    * a deep listen backlog (``request_queue_size``): wide-window async
      clients open dozens to hundreds of connections in one burst, and
      the stdlib default backlog of 5 would refuse the overflow
      (handler threads are already daemonic via the stdlib base class).
    """

    #: Listen backlog -- sized for a wide-window async client's connect burst.
    request_queue_size = 128

    def handle_error(self, request, client_address) -> None:  # noqa: D102
        exc = sys.exc_info()[1]
        if isinstance(exc, (BrokenPipeError, ConnectionResetError)):
            logger.debug("client %s disconnected: %s", client_address, exc)
            return
        super().handle_error(request, client_address)


@dataclass(frozen=True)
class KeyUsage:
    """Billing state of one API key."""

    key: str
    issued: int
    budget: int | None

    @property
    def remaining(self) -> int | None:
        """Queries left before 429s start (``None`` = unlimited)."""
        if self.budget is None:
            return None
        return max(self.budget - self.issued, 0)


@dataclass(frozen=True)
class ServerStats:
    """Aggregate billing counters of a :class:`HiddenDBServer`."""

    queries_total: int
    faults_injected: int
    keys: tuple[KeyUsage, ...]
    #: Budget assumed for keys without a per-key override (``None`` =
    #: unlimited).
    default_budget: int | None = None

    def usage(self, key: str) -> KeyUsage | None:
        """Usage record of ``key``, or ``None`` if it never queried."""
        for usage in self.keys:
            if usage.key == key:
                return usage
        return None


class _Billing:
    """Thread-safe per-key query counters with budget enforcement."""

    def __init__(
        self, default_budget: int | None, budgets: Mapping[str, int | None]
    ) -> None:
        self._default_budget = default_budget
        self._budgets = dict(budgets)
        self._issued: dict[str, int] = {}
        self._lock = threading.Lock()

    @property
    def default_budget(self) -> int | None:
        return self._default_budget

    def budget_of(self, key: str) -> int | None:
        return self._budgets.get(key, self._default_budget)

    def charge(self, key: str) -> int | None:
        """Bill one query to ``key``; its 1-based sequence, or ``None`` when
        the budget is exhausted (nothing is billed then)."""
        budget = self.budget_of(key)
        with self._lock:
            issued = self._issued.get(key, 0)
            if budget is not None and issued >= budget:
                return None
            self._issued[key] = issued + 1
            return issued + 1

    def reset(self, key: str | None = None) -> None:
        with self._lock:
            if key is None:
                self._issued.clear()
            else:
                self._issued.pop(key, None)

    def snapshot(self) -> tuple[int, tuple[KeyUsage, ...]]:
        with self._lock:
            issued = dict(self._issued)
        # Keys with configured budget overrides are reported even before
        # their first query: the coordinator sizes shard budgets from
        # this snapshot *without* issuing a billed probe.
        for key in self._budgets:
            issued.setdefault(key, 0)
        keys = tuple(
            KeyUsage(key=key, issued=count, budget=self.budget_of(key))
            for key, count in sorted(issued.items())
        )
        return sum(issued.values()), keys


class _TokenBucket:
    """Thread-safe per-key token bucket (``rate`` tokens/s, ``burst`` cap).

    Each key starts with a full bucket; a request takes one token.  When
    the bucket is empty :meth:`acquire` returns the honest number of
    seconds until a token refills -- exactly what the server advertises
    as ``Retry-After`` -- so a well-behaved client never has to guess.
    """

    def __init__(
        self, rate: float, burst: int, clock=time.monotonic
    ) -> None:
        self._rate = float(rate)
        self._burst = float(burst)
        self._clock = clock
        #: key -> (tokens remaining, stamp of the last refill).
        self._buckets: dict[str, tuple[float, float]] = {}
        self._lock = threading.Lock()

    def acquire(self, key: str) -> float:
        """Take one token for ``key``; ``0.0`` on success, else seconds
        until the next token is available."""
        now = self._clock()
        with self._lock:
            tokens, stamp = self._buckets.get(key, (self._burst, now))
            tokens = min(self._burst, tokens + (now - stamp) * self._rate)
            if tokens >= 1.0:
                self._buckets[key] = (tokens - 1.0, now)
                return 0.0
            self._buckets[key] = (tokens, now)
            return (1.0 - tokens) / self._rate

    def reset(self, key: str | None = None) -> None:
        with self._lock:
            if key is None:
                self._buckets.clear()
            else:
                self._buckets.pop(key, None)


class HiddenDBServer:
    """Serve a table + ranker as a networked top-k search interface.

    Parameters
    ----------
    table:
        The hidden data.
    ranker:
        Domination-consistent ranking function (default: unit-weight SUM).
    k:
        Top-k output limit of the search form.
    host / port:
        Bind address; ``port=0`` picks an ephemeral port (read it back from
        :attr:`port` / :attr:`url` after :meth:`start`).
    key_budget:
        Default per-API-key query budget (``None`` = unlimited), mirroring
        per-IP / per-API-key limits of real sites.
    budgets:
        Per-key overrides of ``key_budget``.
    faults:
        Optional :class:`FaultConfig` injecting latency jitter and retriable
        429/5xx errors on the query endpoint.
    rate_limit:
        Per-API-key sustained query rate in QPS, enforced with a token
        bucket (``None`` = unlimited).  Requests over the rate get a 429
        with an honest ``Retry-After`` naming the seconds until the next
        token refills.
    burst:
        Token-bucket capacity: how many queries a key may issue
        back-to-back before the sustained ``rate_limit`` applies.
        Defaults to ``max(1, round(rate_limit))``.
    max_inflight:
        Server-wide concurrency cap on query handling (``None`` =
        unbounded).  Excess load is shed with a retriable 503.
    validate:
        Enforce the per-attribute interface taxonomy (leave on).
    name:
        Service name reported by ``/api/schema`` and ``/api/stats``.
    engine:
        Serving engine (:mod:`repro.hiddendb.dataplane`): ``auto`` picks
        the fastest bit-identical path for the table/ranker pair -- the
        SQL-native index walk for a :class:`~repro.hiddendb.sqltable.
        SQLTable` under its persisted ranking, the rank-ordered in-memory
        scan otherwise.
    """

    def __init__(
        self,
        table: Table,
        ranker: Ranker | None = None,
        *,
        k: int = 1,
        host: str = "127.0.0.1",
        port: int = 0,
        key_budget: int | None = None,
        budgets: Mapping[str, int | None] | None = None,
        faults: FaultConfig | None = None,
        rate_limit: float | None = None,
        burst: int | None = None,
        max_inflight: int | None = None,
        validate: bool = True,
        name: str = "hidden-db",
        engine: str = "auto",
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if key_budget is not None and key_budget < 0:
            raise ValueError(f"key_budget must be >= 0, got {key_budget}")
        if rate_limit is not None and rate_limit <= 0:
            raise ValueError(f"rate_limit must be > 0, got {rate_limit}")
        if burst is not None:
            if rate_limit is None:
                raise ValueError("burst requires rate_limit")
            if burst < 1:
                raise ValueError(f"burst must be >= 1, got {burst}")
        if max_inflight is not None and max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        self._table = table
        self._ranker = ranker if ranker is not None else default_ranker(table)
        self._engine = make_engine(table, self._ranker, engine)
        self._k = k
        self._host = host
        self._requested_port = port
        self._billing = _Billing(key_budget, budgets or {})
        self._injector = (
            FaultInjector(faults) if faults is not None and faults.active else None
        )
        # Traffic shaping: per-key token bucket + server-wide concurrency
        # cap.  Throttled requests are never billed and never replay-cached.
        self._limiter = (
            _TokenBucket(rate_limit, burst if burst is not None
                         else max(1, round(rate_limit)))
            if rate_limit is not None
            else None
        )
        self._max_inflight = max_inflight
        self._active_queries = 0
        self._shape_lock = threading.Lock()
        self._validate = validate
        self._name = name
        self._schema_payload = encode_schema(table.schema)
        self._bound_port: int | None = None
        # Answers already billed, keyed by (api key, client request id): a
        # client that lost the response retries the same id and gets the
        # answer replayed instead of being billed twice.
        self._replay: OrderedDict[
            tuple[str, str], tuple[int, dict[str, Any], dict[str, str]]
        ] = OrderedDict()
        # Request ids currently being processed: a duplicate (client retry
        # racing its own timed-out original) waits for the original instead
        # of double-billing the query.
        self._inflight: dict[tuple[str, str], threading.Event] = {}
        self._replay_lock = threading.Lock()
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self._started: float | None = None
        # Per-instance observability scope, scraped at /metrics.  Billing
        # counters here *shadow* (never replace) the authoritative _Billing
        # ledger: metrics are monotone across /api/reset, billing is not.
        self._metrics = MetricsRegistry()
        self._m_requests = self._metrics.counter(
            "hiddendb_requests_total",
            "HTTP requests received, by API key.",
            ("key",),
        )
        self._m_inflight = self._metrics.gauge(
            "hiddendb_requests_in_flight",
            "HTTP requests currently being processed.",
        )
        self._m_latency = self._metrics.histogram(
            "hiddendb_request_latency_seconds",
            "Wall-clock request handling latency, by route.",
            ("route",),
        )
        self._m_billed = self._metrics.counter(
            "hiddendb_queries_billed_total",
            "Queries billed against a key's budget.",
            ("key",),
        )
        self._m_replayed = self._metrics.counter(
            "hiddendb_queries_replayed_total",
            "Billed answers replayed for retried request ids, by API key.",
            ("key",),
        )
        self._m_faulted = self._metrics.counter(
            "hiddendb_queries_faulted_total",
            "Injected retriable faults returned, by API key.",
            ("key",),
        )
        self._m_scan = self._metrics.histogram(
            "hiddendb_table_scan_seconds",
            "Top-k answer computation latency, by serving engine.",
            ("engine",),
        )
        self._m_mutations = self._metrics.counter(
            "hiddendb_mutations_applied_total",
            "Mutation operations applied through /api/mutate.",
        )
        self._m_throttled = self._metrics.counter(
            "hiddendb_server_throttled_total",
            "Queries throttled (429 rate limit / 503 load shed), by API key.",
            ("key",),
        )
        self._m_version = self._metrics.gauge(
            "hiddendb_data_version",
            "Monotonic data version of the served table.",
        )
        self._m_version.set(float(self.data_version))
        # /api/mutate batches serialize here: concurrent operator batches
        # would otherwise interleave their table rebuilds.
        self._mutate_lock = threading.Lock()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "HiddenDBServer":
        """Bind the socket and serve from a daemon thread; returns ``self``."""
        if self._httpd is not None:
            raise RuntimeError("server already started")
        handler = _make_handler(self)
        try:
            self._httpd = _QuietThreadingHTTPServer(
                (self._host, self._requested_port), handler
            )
        except OSError as exc:
            if exc.errno in (errno.EADDRINUSE, errno.EACCES):
                reason = (
                    "already in use"
                    if exc.errno == errno.EADDRINUSE
                    else "not permitted"
                )
                raise ServiceStartupError(
                    f"port {self._requested_port} on {self._host or '*'} is "
                    f"{reason}; pick another --port (0 chooses a free one) "
                    f"or stop the process bound to it"
                ) from None
            raise
        self._bound_port = self._httpd.server_address[1]
        self._started = time.monotonic()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"repro-service:{self.port}",
            daemon=True,
        )
        self._thread.start()
        logger.info("serving %s (n=%d, k=%d) at %s",
                    self._name, self._table.n, self._k, self.url)
        return self

    def stop(self) -> None:
        """Shut the server down and release the socket (idempotent)."""
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "HiddenDBServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def wait(self, timeout: float | None = None) -> None:
        """Block the calling thread while the server runs (CLI foreground
        mode); a ``timeout`` in seconds returns control after that long."""
        if self._thread is None:
            raise RuntimeError("server not started")
        self._thread.join(timeout)

    # ------------------------------------------------------------------
    # metadata
    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        """Bind host."""
        return self._host

    @property
    def port(self) -> int:
        """Actual bound port (resolves ``port=0`` once started; the last
        bound port keeps being reported after :meth:`stop`)."""
        if self._bound_port is not None:
            return self._bound_port
        return self._requested_port

    @property
    def url(self) -> str:
        """Base URL clients should connect to.

        Wildcard binds (``0.0.0.0`` / ``::`` / ``""``) are advertised as
        the loopback address -- a wildcard is not a routable destination.
        """
        host = self._host
        if host in ("", "0.0.0.0", "::"):
            host = "127.0.0.1"
        elif ":" in host:  # bare IPv6 literal needs brackets in a URL
            host = f"[{host}]"
        return f"http://{host}:{self.port}"

    @property
    def k(self) -> int:
        """Top-k output limit of the served search form."""
        return self._k

    @property
    def name(self) -> str:
        """Service name."""
        return self._name

    @property
    def engine(self) -> str:
        """Name of the serving engine answering queries (``scan`` /
        ``rank`` / ``sqlite``)."""
        return self._engine.label

    @property
    def data_version(self) -> int:
        """Monotonic mutation counter of the served table (0 = never
        mutated).  Advertised on every metadata route and answer header;
        deliberately *not* part of :attr:`fingerprint`."""
        return int(getattr(self._table, "data_version", 0))

    @property
    def fingerprint(self) -> str:
        """Endpoint identity hash (schema + ``k`` + name + ranking).

        The same value the remote client derives from ``/api/schema`` and
        the crawl store keys its ledger by; advertised on ``/healthz`` and
        ``/api/schema`` so a coordinator can verify that every backend of
        a shard set serves the *same* hidden database without issuing a
        billed query.
        """
        return endpoint_fingerprint(
            self._table.schema, self._k, self._name, self._ranker.describe()
        )

    @property
    def metrics(self) -> MetricsRegistry:
        """Per-instance metrics scope (rendered at ``GET /metrics``)."""
        return self._metrics

    @property
    def uptime_s(self) -> float | None:
        """Seconds since :meth:`start` bound the socket (``None`` before)."""
        if self._started is None:
            return None
        return time.monotonic() - self._started

    def stats(self) -> ServerStats:
        """Current billing counters."""
        total, keys = self._billing.snapshot()
        injected = self._injector.injected if self._injector is not None else 0
        return ServerStats(
            queries_total=total,
            faults_injected=injected,
            keys=keys,
            default_budget=self._billing.default_budget,
        )

    def reset_billing(self, key: str | None = None) -> None:
        """Clear billing counters (ops/test helper; all keys by default).

        Also drops the matching request-id replay entries: after a reset,
        a retried pre-reset id must be billed as a fresh query, not
        replayed unbilled with a stale sequence number.
        """
        self._billing.reset(key)
        with self._replay_lock:
            if key is None:
                self._replay.clear()
            else:
                for replay_key in [
                    k for k in self._replay if k[0] == key
                ]:
                    del self._replay[replay_key]

    # ------------------------------------------------------------------
    # request handling (called from handler threads)
    # ------------------------------------------------------------------
    def _handle_schema(self) -> tuple[int, dict[str, Any], dict[str, str]]:
        return (
            200,
            {
                "name": self._name,
                "k": self._k,
                "schema": self._schema_payload,
                # Ranking identity: folded into crawl-store endpoint
                # fingerprints so differently-ranked services never share
                # a query ledger.
                "ranking": self._ranker.describe(),
                # Server-computed identity hash; clients re-derive it from
                # the fields above, shard sets verify the two agree.
                "fingerprint": self.fingerprint,
                # Capability advertisement: clients that see this pack
                # frontier waves into /api/batch round trips.
                "batch": True,
                "max_batch": MAX_BATCH_ITEMS,
                # Freshness: bumped once per applied mutation batch.
                "data_version": self.data_version,
            },
            {},
        )

    def _handle_stats(self) -> tuple[int, dict[str, Any], dict[str, str]]:
        stats = self.stats()
        uptime = self.uptime_s
        # HTTP request totals (all routes, incl. unbilled stats/schema
        # probes) complement the *billed* counters in ``keys``.
        requests = {
            labels[0]: int(value)
            for labels, value in self._m_requests.samples()
        }
        return (
            200,
            {
                "name": self._name,
                "engine": self._engine.label,
                "data_version": self.data_version,
                "uptime_s": round(uptime, 3) if uptime is not None else None,
                "in_flight": int(self._m_inflight.value()),
                "queries_total": stats.queries_total,
                "faults_injected": stats.faults_injected,
                "default_budget": stats.default_budget,
                "requests": requests,
                "keys": {
                    usage.key: {
                        "issued": usage.issued,
                        "budget": usage.budget,
                        "remaining": usage.remaining,
                    }
                    for usage in stats.keys
                },
            },
            {},
        )

    def _handle_metrics(self) -> tuple[int, str, str]:
        """Prometheus text exposition of the per-instance registry."""
        return 200, render_prometheus(self._metrics), METRICS_CONTENT_TYPE

    def _track_request(self, api_key: str, route: str, elapsed: float) -> None:
        """Record one finished HTTP request (called from handler threads)."""
        self._m_requests.inc(key=api_key)
        self._m_latency.observe(elapsed, route=route)

    def _handle_reset(
        self, payload: Mapping[str, Any]
    ) -> tuple[int, dict[str, Any], dict[str, str]]:
        self.reset_billing(payload.get("api_key"))
        return self._handle_stats()

    def _handle_mutate(
        self, payload: Mapping[str, Any]
    ) -> tuple[int, dict[str, Any], dict[str, str]]:
        """Apply an operator mutation batch to the served table.

        Accepts either an explicit ``{"ops": [...]}`` batch or
        ``{"churn": {"frac": F, "seed": S}}``, which draws the
        deterministic :func:`~repro.datagen.mutations.churn_ops` batch
        server-side (the wire then carries two numbers instead of
        thousands of ops).  Mutations are an operator action: they are
        never billed and never count against any key's budget.
        """
        apply = getattr(self._table, "apply_mutations", None)
        if apply is None:
            return (
                400,
                {
                    "error": "mutations_unsupported",
                    "message": f"table {type(self._table).__name__} does "
                    "not support mutations",
                    "retriable": False,
                },
                {},
            )
        ops = payload.get("ops")
        churn = payload.get("churn")
        if (ops is None) == (churn is None):
            return (
                400,
                {"error": "bad_request", "message": "exactly one of ops "
                 "or churn is required", "retriable": False},
                {},
            )
        try:
            with self._mutate_lock:
                if churn is not None:
                    if not isinstance(churn, Mapping) or "frac" not in churn:
                        raise ValueError("churn must be an object with frac")
                    batch = churn_ops(
                        self._table,
                        float(churn["frac"]),
                        int(churn.get("seed", 0)),
                    )
                else:
                    batch = validate_ops(ops)
                applied = int(apply(batch))
        except (KeyError, TypeError, ValueError) as exc:
            return (
                400,
                {"error": "bad_mutation", "message": str(exc),
                 "retriable": False},
                {},
            )
        version = self.data_version
        self._m_mutations.inc(applied)
        self._m_version.set(float(version))
        logger.info(
            "%s: applied %d mutations, data_version=%d",
            self._name, applied, version,
        )
        return (
            200,
            {"applied": applied, "data_version": version},
            {"X-Data-Version": str(version)},
        )

    def _handle_query(
        self,
        payload: Mapping[str, Any],
        api_key: str,
        request_id: str | None = None,
        inject: bool = True,
    ) -> tuple[int, dict[str, Any], dict[str, str]]:
        if request_id is None:
            return self._answer_query(payload, api_key, None, inject=inject)
        replay_key = (api_key, request_id)
        while True:
            with self._replay_lock:
                replayed = self._replay.get(replay_key)
                if replayed is None:
                    pending = self._inflight.get(replay_key)
                    if pending is None:
                        self._inflight[replay_key] = threading.Event()
                        break
            if replayed is not None:
                self._m_replayed.inc(key=api_key)
                return replayed
            # The original request is still being processed (e.g. sleeping
            # in injected latency past the client's timeout): wait for it
            # and replay its answer rather than billing a second time.
            if not pending.wait(INFLIGHT_WAIT_SECONDS):
                return (
                    503,
                    {"error": "in_flight_timeout", "retriable": True},
                    {"Retry-After": "0"},
                )
        try:
            return self._answer_query(payload, api_key, replay_key, inject=inject)
        finally:
            with self._replay_lock:
                event = self._inflight.pop(replay_key, None)
            if event is not None:
                event.set()

    def _peek_replay(
        self, api_key: str, request_id: str | None
    ) -> tuple[int, dict[str, Any], dict[str, str]] | None:
        """Already-billed answer for ``request_id``, if one is cached."""
        if request_id is None:
            return None
        with self._replay_lock:
            return self._replay.get((api_key, request_id))

    def _handle_batch(
        self, payload: Mapping[str, Any], api_key: str
    ) -> tuple[int, dict[str, Any], dict[str, str]]:
        """Answer a batch of queries in one round trip.

        Every item goes through the same pipeline as ``/api/query`` --
        replay for already-billed request ids, per-item fault draws,
        per-item validation and billing -- but injected *latency* is slept
        once at the per-batch maximum: a batch models one round trip whose
        items the upstream site processes concurrently, which is exactly
        the economy batching exists to exploit.
        """
        items = payload.get("items")
        if not isinstance(items, list) or not items:
            return (
                400,
                {"error": "bad_request", "message": "items must be a "
                 "non-empty list", "retriable": False},
                {},
            )
        if len(items) > MAX_BATCH_ITEMS:
            return (
                400,
                {"error": "batch_too_large", "limit": MAX_BATCH_ITEMS,
                 "retriable": False},
                {},
            )
        outcomes: list[tuple[int, dict[str, Any], dict[str, str]] | None] = (
            [None] * len(items)
        )
        fresh: list[int] = []
        max_delay = 0.0
        for index, item in enumerate(items):
            if not isinstance(item, Mapping):
                outcomes[index] = (
                    400,
                    {"error": "bad_request", "message": "item must be an "
                     "object", "retriable": False},
                    {},
                )
                continue
            request_id = item.get("id")
            request_id = str(request_id) if request_id is not None else None
            replayed = self._peek_replay(api_key, request_id)
            if replayed is not None:
                # Replays (client retries of billed items) neither redraw
                # faults nor pay latency again.
                self._m_replayed.inc(key=api_key)
                outcomes[index] = replayed
                continue
            if self._injector is not None:
                delay, code = self._injector.draw()
                max_delay = max(max_delay, delay)
                if code is not None:
                    self._m_faulted.inc(key=api_key)
                    outcomes[index] = (
                        code,
                        {"error": "injected_fault", "retriable": True},
                        {"Retry-After": "0"},
                    )
                    continue
            fresh.append(index)
        if max_delay > 0.0:
            time.sleep(max_delay)
        for index in fresh:
            item = items[index]
            request_id = item.get("id")
            outcomes[index] = self._handle_query(
                {"query": item.get("query")},
                api_key,
                str(request_id) if request_id is not None else None,
                inject=False,
            )
        body = {
            "items": [
                encode_batch_item(status, item_body)
                for status, item_body, _headers in outcomes
            ]
        }
        return 200, body, {}

    def _admit(
        self, api_key: str
    ) -> tuple[int, dict[str, Any], dict[str, str]] | None:
        """Traffic-shaping admission: ``None`` to proceed (an in-flight
        slot is then held and must be released), else the throttle
        response.  Throttled queries are never billed, never replayed,
        and never draw injected faults."""
        with self._shape_lock:
            if (
                self._max_inflight is not None
                and self._active_queries >= self._max_inflight
            ):
                self._m_throttled.inc(key=api_key)
                return (
                    503,
                    {
                        "error": "overloaded",
                        "retriable": True,
                        "retry_after": LOAD_SHED_RETRY_AFTER,
                    },
                    {"Retry-After": f"{LOAD_SHED_RETRY_AFTER:.3f}"},
                )
            self._active_queries += 1
        if self._limiter is not None:
            wait = self._limiter.acquire(api_key)
            if wait > 0.0:
                with self._shape_lock:
                    self._active_queries -= 1
                self._m_throttled.inc(key=api_key)
                return (
                    429,
                    {
                        "error": "rate_limited",
                        "retriable": True,
                        "retry_after": round(wait, 4),
                    },
                    {"Retry-After": f"{wait:.3f}"},
                )
        return None

    def _answer_query(
        self,
        payload: Mapping[str, Any],
        api_key: str,
        replay_key: tuple[str, str] | None,
        inject: bool = True,
    ) -> tuple[int, dict[str, Any], dict[str, str]]:
        if self._limiter is None and self._max_inflight is None:
            return self._serve_query(payload, api_key, replay_key, inject=inject)
        throttled = self._admit(api_key)
        if throttled is not None:
            return throttled
        try:
            return self._serve_query(payload, api_key, replay_key, inject=inject)
        finally:
            with self._shape_lock:
                self._active_queries -= 1

    def _serve_query(
        self,
        payload: Mapping[str, Any],
        api_key: str,
        replay_key: tuple[str, str] | None,
        inject: bool = True,
    ) -> tuple[int, dict[str, Any], dict[str, str]]:
        if inject and self._injector is not None:
            delay, code = self._injector.draw()
            if delay > 0.0:
                time.sleep(delay)
            if code is not None:
                self._m_faulted.inc(key=api_key)
                return (
                    code,
                    {"error": "injected_fault", "retriable": True},
                    {"Retry-After": "0"},
                )
        try:
            query = decode_query(payload.get("query") or {})
        except (KeyError, TypeError, ValueError) as exc:
            return (
                400,
                {"error": "bad_request", "message": str(exc), "retriable": False},
                {},
            )
        if self._validate:
            try:
                query.validate(self._table.schema)
            except UnsupportedQueryError as exc:
                return (
                    400,
                    {
                        "error": "unsupported_query",
                        "message": str(exc),
                        "retriable": False,
                    },
                    {},
                )
        sequence = self._billing.charge(api_key)
        if sequence is None:
            limit = self._billing.budget_of(api_key)
            return (
                429,
                {"error": "budget_exceeded", "limit": limit, "retriable": False},
                {"X-Budget-Remaining": "0"},
            )
        self._m_billed.inc(key=api_key)
        scan_started = time.perf_counter()
        rows = self._engine.top_rows(query, self._k)
        self._m_scan.observe(
            time.perf_counter() - scan_started, engine=self._engine.label
        )
        body = encode_answer(rows, overflow=len(rows) == self._k, sequence=sequence)
        budget = self._billing.budget_of(api_key)
        # The version the answer was computed against: replayed answers
        # keep the header they were billed with, so a replay after churn
        # correctly reports the (older) version of its cached rows.
        headers = {
            "X-Queries-Issued": str(sequence),
            "X-Data-Version": str(self.data_version),
        }
        if budget is not None:
            headers["X-Budget-Remaining"] = str(max(budget - sequence, 0))
        if replay_key is not None:
            with self._replay_lock:
                self._replay[replay_key] = (200, body, headers)
                while len(self._replay) > REPLAY_CAPACITY:
                    self._replay.popitem(last=False)
        return 200, body, headers

    def __repr__(self) -> str:
        state = "running" if self._httpd is not None else "stopped"
        return (
            f"HiddenDBServer({self._name}: n={self._table.n}, k={self._k}, "
            f"{state} at {self.url})"
        )


def _make_handler(server: HiddenDBServer) -> type[BaseHTTPRequestHandler]:
    """Build the request-handler class bound to one :class:`HiddenDBServer`."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        # Small request/response pairs over keep-alive connections stall on
        # Nagle + delayed ACK; send responses immediately.
        disable_nagle_algorithm = True

        # -- plumbing ---------------------------------------------------
        def _reply(
            self, status: int, body: dict[str, Any], headers: Mapping[str, str]
        ) -> None:
            encoded = json.dumps(body).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(encoded)))
            for name, value in headers.items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(encoded)

        def _reply_text(
            self, status: int, text: str, content_type: str = "text/plain"
        ) -> None:
            encoded = text.encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(encoded)))
            self.end_headers()
            self.wfile.write(encoded)

        def _read_json(self) -> dict[str, Any] | None:
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b"{}"
            try:
                payload = json.loads(raw.decode("utf-8") or "{}")
            except (UnicodeDecodeError, json.JSONDecodeError):
                return None
            return payload if isinstance(payload, dict) else None

        def _api_key(self) -> str:
            return self.headers.get("X-Api-Key") or ANONYMOUS_KEY

        # -- routes -----------------------------------------------------
        def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
            server._m_inflight.inc()
            started = time.monotonic()
            try:
                self._get()
            finally:
                server._m_inflight.dec()
                server._track_request(
                    self._api_key(), self.path, time.monotonic() - started
                )

        def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
            server._m_inflight.inc()
            started = time.monotonic()
            try:
                self._post()
            finally:
                server._m_inflight.dec()
                server._track_request(
                    self._api_key(), self.path, time.monotonic() - started
                )

        def _get(self) -> None:
            if self.path == "/api/schema":
                self._reply(*server._handle_schema())
            elif self.path == "/api/stats":
                self._reply(*server._handle_stats())
            elif self.path == "/metrics":
                status, text, content_type = server._handle_metrics()
                self._reply_text(status, text, content_type)
            elif self.path == "/healthz":
                self._reply(
                    200,
                    {
                        "status": "ok",
                        "name": server.name,
                        "fingerprint": server.fingerprint,
                        "data_version": server.data_version,
                    },
                    {},
                )
            else:
                self._reply(
                    404, {"error": "not_found", "retriable": False}, {}
                )

        def _post(self) -> None:
            payload = self._read_json()
            if payload is None:
                self._reply(
                    400,
                    {"error": "bad_request", "message": "invalid JSON body",
                     "retriable": False},
                    {},
                )
                return
            if self.path == "/api/query":
                self._reply(
                    *server._handle_query(
                        payload,
                        self._api_key(),
                        self.headers.get("X-Request-Id"),
                    )
                )
            elif self.path == "/api/batch":
                self._reply(*server._handle_batch(payload, self._api_key()))
            elif self.path == "/api/mutate":
                self._reply(*server._handle_mutate(payload))
            elif self.path == "/api/reset":
                self._reply(*server._handle_reset(payload))
            else:
                self._reply(
                    404, {"error": "not_found", "retriable": False}, {}
                )

        def log_message(self, format: str, *args: Any) -> None:
            # Client-propagated trace ids make access-log lines joinable
            # with the crawl-side JSONL spans for the same logical query.
            trace_id = self.headers.get("X-Trace-Id")
            if trace_id:
                logger.debug(
                    "%s %s trace=%s", self.address_string(),
                    format % args, trace_id,
                )
            else:
                logger.debug("%s %s", self.address_string(), format % args)

    return Handler


__all__ = [
    "ANONYMOUS_KEY",
    "HiddenDBServer",
    "KeyUsage",
    "MAX_BATCH_ITEMS",
    "ServerStats",
    "ServiceStartupError",
]
