"""Asyncio remote search endpoint: non-blocking client for the service.

:class:`AsyncRemoteTopKInterface` is the event-loop twin of
:class:`~repro.service.client.RemoteTopKInterface`: it speaks the exact
same JSON wire format (:mod:`repro.service.wire`) against the exact same
server, but over **non-blocking sockets** driven by one asyncio event
loop, so hundreds of queries can be in flight without a thread apiece.
It implements the
:class:`~repro.hiddendb.endpoint.AsyncSearchEndpoint` protocol (plus a
blocking ``query()`` bridge, so it also satisfies the classic
:class:`~repro.hiddendb.endpoint.SearchEndpoint` and drops into serial
strategies unchanged) and shares the sync client's entire
transport-independent core
(:class:`~repro.service.client.QueryClientCore`): the never-billed LRU
query cache and crawl-store ledger mount, deterministic ``X-Request-Id``
replay derivation, retry/backoff classification and telemetry -- one
implementation, two transports, so the billing semantics cannot drift.

Transport specifics:

* **connection pooling** -- keep-alive HTTP/1.1 connections are pooled on
  the client's private event loop and reused across queries; concurrent
  in-flight queries each hold one connection and return it on completion;
* **minimal HTTP parsing** -- responses are read with a purpose-built
  status-line / headers / ``Content-Length`` parser instead of the stdlib
  ``http.client`` machinery, which is a measurable per-query saving at
  high concurrency (this is the "specialise the execution substrate"
  argument: the wire format is fixed and simple, so the client does the
  minimum work the format requires);
* **retry with exponential backoff** -- identical policy and error mapping
  to the sync client, with ``asyncio.sleep`` instead of blocking sleeps;
* **event-loop affinity** -- all I/O runs on one
  :class:`~repro.hiddendb.endpoint.EventLoopRunner` owned by the client,
  so pooled connections stay valid for the client's whole lifetime and
  ``close()`` releases everything deterministically.  ``aquery`` /
  ``abatch_query`` may be awaited from any loop; the work is marshalled
  to the client's loop and awaited without blocking the caller's loop.
"""

from __future__ import annotations

import asyncio
import inspect
import json
import socket
from typing import Any, Awaitable, Callable, Mapping, Sequence

from ..hiddendb.endpoint import EventLoopRunner
from ..hiddendb.errors import HiddenDBError
from ..hiddendb.interface import QueryResult
from ..hiddendb.query import Query
from .client import (
    QueryClientCore,
    RemoteServiceError,
    _parse_retry_after,
    _Retriable,
)
from .server import ANONYMOUS_KEY
from .wire import (
    decode_answer,
    decode_batch_answer,
    encode_batch_request,
    encode_query,
)

#: Idle keep-alive connections retained per client.
DEFAULT_POOL_SIZE = 128


class _Connection:
    """One pooled keep-alive connection (reader/writer pair)."""

    __slots__ = ("reader", "writer")

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.reader = reader
        self.writer = writer

    @property
    def usable(self) -> bool:
        return not self.writer.is_closing()

    def close(self) -> None:
        try:
            self.writer.close()
        except Exception:  # pragma: no cover - teardown best effort
            pass


class AsyncRemoteTopKInterface(QueryClientCore):
    """An :class:`AsyncSearchEndpoint` speaking HTTP to a hidden-DB service.

    Construction performs the same ``/api/schema`` bootstrap as the sync
    client (blocking, on the client's private loop).  Parameters mirror
    :class:`~repro.service.client.RemoteTopKInterface`; ``sleep`` may be a
    plain callable or a coroutine function (tests pass a no-op),
    ``pool_size`` bounds the idle keep-alive connections retained.
    """

    def __init__(
        self,
        url: str,
        *,
        api_key: str = ANONYMOUS_KEY,
        timeout: float = 30.0,
        max_retries: int = 8,
        backoff: float = 0.05,
        backoff_cap: float = 2.0,
        cache_size: int | None = None,
        ledger=None,
        replay_nonce: str | None = None,
        pool_size: int = DEFAULT_POOL_SIZE,
        sleep: Callable[[float], Awaitable[None] | None] = asyncio.sleep,
    ) -> None:
        self._init_core(
            url,
            api_key=api_key,
            timeout=timeout,
            max_retries=max_retries,
            backoff=backoff,
            backoff_cap=backoff_cap,
            cache_size=cache_size,
            ledger=ledger,
            replay_nonce=replay_nonce,
        )
        self._pool_size = pool_size
        self._sleep_fn = sleep
        #: Idle connections; touched only on the runner's loop, so no lock.
        self._pool: list[_Connection] = []
        self._runner = EventLoopRunner(name="repro-aclient")
        self._closed = False
        try:
            self._apply_metadata(
                self._runner.run(self._arequest("GET", "/api/schema"))
            )
        except BaseException:
            # A failed bootstrap must not leak the loop thread (callers
            # may retry construction in a supervisor loop).
            self.close()
            raise

    # ------------------------------------------------------------------
    # AsyncSearchEndpoint surface
    # ------------------------------------------------------------------
    async def aquery(self, query: Query) -> QueryResult:
        """Issue one query without blocking (or answer it from the cache).

        Awaitable from any event loop; the I/O runs on the client's own
        loop.  Semantics -- caching, billing, retry, error mapping,
        request-id replay -- are identical to the sync client's
        ``query()``.
        """
        return await self._marshal(self._aquery(query))

    async def abatch_query(
        self, queries: Sequence[Query]
    ) -> tuple[QueryResult, ...]:
        """Answer several independent queries in one ``/api/batch`` trip.

        Per-item semantics and the ``partial_results`` contract match the
        sync client's ``batch_query`` exactly.
        """
        return await self._marshal(self._abatch_query(list(queries)))

    # ------------------------------------------------------------------
    # blocking bridge (SearchEndpoint compatibility)
    # ------------------------------------------------------------------
    def query(self, query: Query) -> QueryResult:
        """Blocking twin of :meth:`aquery` (serial strategies, tooling)."""
        return self._runner.run(self._aquery(query))

    def batch_query(self, queries: Sequence[Query]) -> tuple[QueryResult, ...]:
        """Blocking twin of :meth:`abatch_query`."""
        return self._runner.run(self._abatch_query(list(queries)))

    def server_stats(self) -> dict[str, Any]:
        """The service's ``/api/stats`` payload (billing counters)."""
        return self._runner.run(self._arequest("GET", "/api/stats"))

    def healthz(self) -> dict[str, Any]:
        """The service's ``/healthz`` payload (liveness + fingerprint)."""
        return self._runner.run(self._arequest("GET", "/healthz"))

    def refresh_data_version(self) -> int:
        """Re-read the endpoint's data version over ``/healthz`` (free)."""
        payload = self.healthz()
        self._note_data_version(
            {"X-Data-Version": str(payload.get("data_version", 0))}
        )
        return self._data_version

    def mutate(
        self,
        ops: Sequence[Mapping[str, Any]] | None = None,
        *,
        churn: Mapping[str, Any] | None = None,
    ) -> dict[str, Any]:
        """Apply an operator mutation batch via ``POST /api/mutate``.

        Blocking (operator tooling, not crawl hot path); semantics match
        the sync client's ``mutate`` exactly.
        """
        if (ops is None) == (churn is None):
            raise ValueError("exactly one of ops or churn is required")
        body: dict[str, Any] = (
            {"ops": list(ops)} if ops is not None else {"churn": dict(churn)}
        )
        payload = self._runner.run(
            self._arequest("POST", "/api/mutate", body)
        )
        self._note_data_version(
            {"X-Data-Version": str(payload.get("data_version", 0))}
        )
        return payload

    def close(self) -> None:
        """Close every pooled connection and stop the client's loop."""
        if self._closed:
            return
        self._closed = True
        try:
            self._runner.run(self._drain_pool())
        except Exception:
            pass
        self._runner.close()

    def __enter__(self) -> "AsyncRemoteTopKInterface":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # loop marshalling
    # ------------------------------------------------------------------
    @property
    def aio_runner(self) -> EventLoopRunner:
        """The client's event-loop runner.

        Exposed so the async execution strategy can schedule transports
        directly on the loop that owns this client's connection pool --
        one cross-thread hop per query instead of two.
        """
        return self._runner

    async def _marshal(self, coro):
        """Run ``coro`` on the client's loop, awaited from any loop."""
        if asyncio.get_running_loop() is self._runner.loop:
            return await coro
        return await asyncio.wrap_future(self._runner.submit(coro))

    async def _asleep(self, seconds: float) -> None:
        outcome = self._sleep_fn(seconds)
        if inspect.isawaitable(outcome):
            await outcome

    # ------------------------------------------------------------------
    # query semantics (mirrors the sync client, awaitable transport)
    # ------------------------------------------------------------------
    async def _aquery(self, query: Query) -> QueryResult:
        cached = self._cache_lookup(query)
        if cached is not None:
            return cached
        # One request id per *logical* query, reused across retries: the
        # server replays an already-billed answer for a seen id, so a
        # response lost after billing is never billed twice.  Durable
        # crawls derive the id from the session nonce + canonical query
        # key, extending the same guarantee across process restarts.
        payload = await self._arequest(
            "POST",
            "/api/query",
            {"query": encode_query(query)},
            request_id=self._request_id(query),
            trace_id=self._trace_id(query),
        )
        rows, overflow, sequence = decode_answer(payload)
        self._count_billed(query)
        result = QueryResult(
            query=query, rows=rows, overflow=overflow, sequence=sequence
        )
        self._cache_store(query, result)
        return result

    async def _abatch_query(
        self, queries: list[Query]
    ) -> tuple[QueryResult, ...]:
        if not queries:
            return ()
        results: list[QueryResult | None] = [None] * len(queries)
        pending: list[int] = []
        for index, query in enumerate(queries):
            cached = self._cache_lookup(query)
            if cached is not None:
                results[index] = cached
            else:
                pending.append(index)
        if pending and not self._supports_batch:
            # Pre-batch server: degrade to per-query dispatch with the
            # same first-terminal-failure / partial_results contract.
            try:
                for index in pending:
                    results[index] = await self._aquery(queries[index])
            except HiddenDBError as exc:
                exc.partial_results = tuple(results)
                raise
            return tuple(results)  # type: ignore[return-value]
        ids = {index: self._request_id(queries[index]) for index in pending}
        failures: dict[int, Exception] = {}
        attempt = 0
        while pending:
            retry: list[int] = []
            retry_after: float | None = None
            for start in range(0, len(pending), self._max_batch):
                chunk = pending[start : start + self._max_batch]
                try:
                    payload = await self._arequest(
                        "POST",
                        "/api/batch",
                        encode_batch_request(
                            [queries[i] for i in chunk],
                            [ids[i] for i in chunk],
                        ),
                    )
                    outcomes = decode_batch_answer(payload, len(chunk))
                except HiddenDBError as exc:
                    # Transport failed terminally for this chunk; answers
                    # from earlier chunks/rounds were already folded into
                    # ``results`` and must not be lost.
                    exc.partial_results = tuple(results)
                    raise
                except ValueError as exc:
                    wrapped = RemoteServiceError(
                        f"malformed batch answer: {exc}"
                    )
                    wrapped.partial_results = tuple(results)
                    raise wrapped from None
                for index, (status, body) in zip(chunk, outcomes):
                    if status < 400:
                        rows, overflow, sequence = decode_answer(body)
                        result = QueryResult(
                            query=queries[index],
                            rows=rows,
                            overflow=overflow,
                            sequence=sequence,
                        )
                        self._count_billed(queries[index])
                        self._cache_store(queries[index], result)
                        results[index] = result
                        continue
                    exc = self._classify_payload(status, body)
                    if isinstance(exc, _Retriable):
                        self._note_throttle(exc)
                        if exc.retry_after is not None and (
                            retry_after is None
                            or exc.retry_after > retry_after
                        ):
                            retry_after = exc.retry_after
                        retry.append(index)
                    else:
                        failures[index] = exc
            if not retry:
                break
            if attempt >= self._max_retries:
                for index in retry:
                    failures[index] = RemoteServiceError(
                        f"batch item still failing after "
                        f"{self._max_retries} retries",
                    )
                break
            self._count_retry()
            await self._asleep(self._retry_delay(attempt + 1, retry_after))
            attempt += 1
            pending = retry
        if failures:
            exc = failures[min(failures)]
            # Aligned-with-holes: billed answers (including ones *after*
            # the first failing position) stay attached; failed or unsent
            # items stay None and are the only unbilled slots.
            exc.partial_results = tuple(results)
            raise exc
        return tuple(results)  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # transport (runs on the client's loop)
    # ------------------------------------------------------------------
    async def _arequest(
        self,
        method: str,
        path: str,
        body: Mapping[str, Any] | None = None,
        request_id: str | None = None,
        trace_id: str | None = None,
    ) -> dict[str, Any]:
        last_status: int | None = None
        last_reason = "unknown error"
        retry_after: float | None = None
        for attempt in range(self._max_retries + 1):
            if attempt:
                self._count_retry(trace_id=trace_id)
                await self._asleep(self._retry_delay(attempt, retry_after))
            try:
                return await self._asend(method, path, body, request_id,
                                         trace_id)
            except _Retriable as exc:
                last_status = exc.status
                last_reason = exc.reason
                retry_after = exc.retry_after
                self._note_throttle(exc)
                if self._observer is not None:
                    self._observer.client_event(
                        "fault", trace_id=trace_id, status=exc.status,
                        path=path,
                    )
        raise RemoteServiceError(
            f"{method} {path} still failing after {self._max_retries} "
            f"retries: {last_reason}",
            status=last_status,
        )

    async def _asend(
        self,
        method: str,
        path: str,
        body: Mapping[str, Any] | None,
        request_id: str | None = None,
        trace_id: str | None = None,
    ) -> dict[str, Any]:
        data = b"" if body is None else json.dumps(body).encode("utf-8")
        held: list[_Connection] = []  # visible to cleanup if we time out
        if self._observer is not None:
            self._observer.client_event(
                "attempt", trace_id=trace_id, path=path
            )

        async def exchange():
            conn = await self._acquire()
            held.append(conn)
            head = (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {self._netloc}\r\n"
                f"Content-Type: application/json\r\n"
                f"X-Api-Key: {self._api_key}\r\n"
            )
            if request_id is not None:
                head += f"X-Request-Id: {request_id}\r\n"
            if trace_id is not None:
                head += f"X-Trace-Id: {trace_id}\r\n"
            head += f"Content-Length: {len(data)}\r\n\r\n"
            conn.writer.write(head.encode("latin-1") + data)
            await conn.writer.drain()
            return await self._read_response(conn.reader)

        try:
            # One timeout bounds the whole round trip -- connect, write,
            # response -- matching the sync client's socket timeout.
            status, headers, raw = await asyncio.wait_for(
                exchange(), self._timeout
            )
        except asyncio.CancelledError:
            # A cancelled drain abandons the request mid-flight; the
            # connection's stream state is unknown, so drop it.
            for conn in held:
                conn.close()
            raise
        except (
            OSError,
            EOFError,
            ConnectionError,
            asyncio.TimeoutError,
            asyncio.IncompleteReadError,
        ) as exc:
            # Transient transport failure (refused mid-restart, reset,
            # timeout, half-closed keep-alive): reconnect on retry.
            for conn in held:
                conn.close()
            raise _Retriable(
                str(exc) or type(exc).__name__, status=None
            ) from None
        conn = held[0]
        if headers.get("connection", "").lower() == "close":
            conn.close()
        else:
            self._release(conn)
        # Budget headers arrive on error responses too (a 429 reports 0
        # remaining); record them before classifying the status.
        self._note_budget(headers)
        self._note_data_version(headers)
        if status >= 400:
            error = self._classify(status, raw)
            if isinstance(error, _Retriable):
                hinted = _parse_retry_after(headers.get("retry-after"))
                if hinted is not None:
                    error.retry_after = hinted
            raise error
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise RemoteServiceError(
                f"malformed response body from {method} {path}: {exc}",
                status=status,
            ) from None

    @staticmethod
    async def _read_response(
        reader: asyncio.StreamReader,
    ) -> tuple[int, dict[str, str], bytes]:
        """Minimal HTTP/1.1 response parse: status, headers, sized body.

        The service always sends ``Content-Length`` (no chunked encoding),
        so the full generality -- and Python-level cost -- of the stdlib
        parser is not needed on this hot path.
        """
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                raise EOFError("connection closed before response") from None
            raise
        status_line, _, header_block = head.partition(b"\r\n")
        parts = status_line.split(None, 2)
        if (
            len(parts) < 2
            or not parts[0].startswith(b"HTTP/")
            or not parts[1].isdigit()
        ):
            raise ConnectionError(f"malformed status line {status_line!r}")
        status = int(parts[1])
        headers: dict[str, str] = {}
        for line in header_block.decode("latin-1").split("\r\n"):
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        declared = headers.get("content-length", "0") or "0"
        if not declared.isdigit():
            raise ConnectionError(f"malformed Content-Length {declared!r}")
        length = int(declared)
        raw = await reader.readexactly(length) if length else b""
        return status, headers, raw

    async def _acquire(self) -> _Connection:
        """A pooled keep-alive connection, opening a fresh one when dry."""
        while self._pool:
            conn = self._pool.pop()
            if conn.usable:
                return conn
            conn.close()
        reader, writer = await asyncio.open_connection(
            self._host,
            self._port,
            ssl=True if self._scheme == "https" else None,
        )
        sock = writer.get_extra_info("socket")
        if sock is not None:
            # Disable Nagle: each query is one small request waiting on
            # one small response, the exact pattern Nagle + delayed ACK
            # turns into ~40ms/query stalls on a keep-alive connection.
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return _Connection(reader, writer)

    def _release(self, conn: _Connection) -> None:
        if conn.usable and len(self._pool) < self._pool_size:
            self._pool.append(conn)
        else:
            conn.close()

    async def _drain_pool(self) -> None:
        pool, self._pool = self._pool, []
        for conn in pool:
            conn.close()


__all__ = ["AsyncRemoteTopKInterface", "DEFAULT_POOL_SIZE"]
