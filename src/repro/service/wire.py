"""JSON wire format shared by the service server and the remote client.

Keeps (de)serialisation in one place so the two sides cannot drift: the
server encodes with the same functions the client decodes with, and the
round-trip tests pin the format.  The format is deliberately plain JSON --
no pickling, no numpy types -- so non-Python clients can speak it too.

Schemas travel as ``{"attributes": [{name, domain_size, kind, labels?}]}``
(``kind`` is the :class:`~repro.hiddendb.attributes.InterfaceKind` value
string); queries as ``{"ranges": {"<index>": [lo, hi]}, "filters":
{name: value}}``; answers as ``{"rows": [{rid, values}], "overflow",
"sequence"}``.  Attribute ``labels`` are display-only and are dropped when
they are not JSON-representable.

Batches (``POST /api/batch``) travel as ``{"items": [{"id": <request id>,
"query": {...}}]}`` and come back as ``{"items": [{"status": <HTTP-style
int>, "body": {...answer or error...}}]}``, aligned by position.  Each
item carries its own request id so a retried item replays its
already-billed answer instead of being charged twice, exactly like the
``X-Request-Id`` header of the single-query endpoint.

Two further shared currencies live here: the **endpoint fingerprint**
(:func:`endpoint_fingerprint`, the identity hash the server advertises,
the crawl store keys its ledger by and the coordinator verifies shard
membership with) and the **discovery-job spec**
(:func:`decode_job_spec`, the body of the coordinator's
``POST /api/jobs``).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Mapping, Sequence

from ..hiddendb.attributes import Attribute, InterfaceKind, Schema
from ..hiddendb.query import Interval, Query
from ..hiddendb.table import Row

# ----------------------------------------------------------------------
# schema
# ----------------------------------------------------------------------


def _encode_labels(attribute: Attribute) -> list | None:
    if attribute.labels is None:
        return None
    try:
        json.dumps(attribute.labels)
    except (TypeError, ValueError):
        return None
    return list(attribute.labels)


def encode_schema(schema: Schema) -> dict[str, Any]:
    """Schema -> JSON-ready dict."""
    attributes = []
    for attribute in schema.attributes:
        entry: dict[str, Any] = {
            "name": attribute.name,
            "domain_size": attribute.domain_size,
            "kind": attribute.kind.value,
        }
        labels = _encode_labels(attribute)
        if labels is not None:
            entry["labels"] = labels
        attributes.append(entry)
    return {"attributes": attributes}


def decode_schema(payload: Mapping[str, Any]) -> Schema:
    """JSON dict -> Schema."""
    attributes = []
    for entry in payload["attributes"]:
        labels = entry.get("labels")
        attributes.append(
            Attribute(
                name=entry["name"],
                domain_size=int(entry["domain_size"]),
                kind=InterfaceKind(entry["kind"]),
                labels=None if labels is None else tuple(labels),
            )
        )
    return Schema(attributes)


# ----------------------------------------------------------------------
# endpoint identity
# ----------------------------------------------------------------------


def endpoint_descriptor(
    schema: Schema, k: int, name: str = "", ranking: str = ""
) -> str:
    """Canonical JSON descriptor of an endpoint's public identity.

    Covers exactly what determines whether a ledgered answer is reusable:
    the ranking/filtering attribute layout (names, domain sizes, interface
    kinds -- display labels excluded), the top-``k`` limit, the service
    name and the ranking-function label (the same table ranked differently
    returns different answers).  The fingerprint is a hash of this string;
    it is computed identically by the server (``/healthz``,
    ``/api/schema``), the remote client, the crawl store and the
    coordinator, so every layer agrees on whether two endpoints are "the
    same hidden database".
    """
    return json.dumps(
        {
            "attributes": [
                {
                    "name": attribute.name,
                    "domain_size": int(attribute.domain_size),
                    "kind": attribute.kind.value,
                }
                for attribute in schema.attributes
            ],
            "k": int(k),
            "name": name,
            "ranking": ranking,
        },
        sort_keys=True,
        separators=(",", ":"),
    )


def fingerprint_of(descriptor: str) -> str:
    """Hash an :func:`endpoint_descriptor` string into a fingerprint."""
    return hashlib.sha256(descriptor.encode("utf-8")).hexdigest()[:16]


def endpoint_fingerprint(
    schema: Schema, k: int, name: str = "", ranking: str = ""
) -> str:
    """Stable identity hash of an endpoint (schema + ``k`` + name + ranking)."""
    return fingerprint_of(endpoint_descriptor(schema, k, name, ranking))


# ----------------------------------------------------------------------
# queries
# ----------------------------------------------------------------------


def encode_query(query: Query) -> dict[str, Any]:
    """Query -> JSON-ready dict (attribute indices become string keys)."""
    return {
        "ranges": {
            str(index): [interval.lo, interval.hi]
            for index, interval in query.ranges.items()
        },
        "filters": dict(query.filters),
    }


def decode_query(payload: Mapping[str, Any]) -> Query:
    """JSON dict -> Query."""
    ranges = {
        int(index): Interval(int(bounds[0]), int(bounds[1]))
        for index, bounds in (payload.get("ranges") or {}).items()
    }
    filters = {
        str(name): int(value)
        for name, value in (payload.get("filters") or {}).items()
    }
    return Query(ranges, filters)


# ----------------------------------------------------------------------
# rows and answers
# ----------------------------------------------------------------------


def encode_row(row: Row) -> dict[str, Any]:
    """Row -> JSON-ready dict."""
    return {"rid": row.rid, "values": list(row.values)}


def decode_row(payload: Mapping[str, Any]) -> Row:
    """JSON dict -> Row."""
    return Row(int(payload["rid"]), tuple(int(v) for v in payload["values"]))


def encode_answer(
    rows: tuple[Row, ...], overflow: bool, sequence: int
) -> dict[str, Any]:
    """Query answer -> JSON-ready dict (the query itself is not echoed:
    the client already holds it and reattaches it on decode)."""
    return {
        "rows": [encode_row(row) for row in rows],
        "overflow": bool(overflow),
        "sequence": int(sequence),
    }


def decode_answer(
    payload: Mapping[str, Any],
) -> tuple[tuple[Row, ...], bool, int]:
    """JSON dict -> ``(rows, overflow, sequence)``."""
    rows = tuple(decode_row(entry) for entry in payload["rows"])
    return rows, bool(payload["overflow"]), int(payload["sequence"])


# ----------------------------------------------------------------------
# discovery jobs (the coordinator's ``POST /api/jobs`` body)
# ----------------------------------------------------------------------

#: Recognised discovery-job spec fields with their defaults.  ``None``
#: algorithm means "auto-select by schema"; ``None`` budget means
#: unbounded; ``fingerprint`` is the endpoint identity the tenant
#: *expects* to crawl (the coordinator rejects the job with a conflict
#: when it does not match its backends).  ``watch`` turns the job into a
#: continuous monitor: after the initial crawl the coordinator re-checks
#: the endpoint every ``interval_s`` seconds and repairs the skyline with
#: a delta-crawl whenever the data version moved.
JOB_SPEC_DEFAULTS: Mapping[str, Any] = {
    "algorithm": None,
    "budget": None,
    "dedup": None,
    "tenant": "anonymous",
    "workers": 4,
    "checkpoint_every": 8,
    "fingerprint": None,
    "watch": None,
}


def decode_job_spec(payload: Mapping[str, Any]) -> dict[str, Any]:
    """Validate and normalise a job-submission body.

    Unknown fields are rejected (a typo'd ``"budgit"`` must not silently
    submit an unbounded crawl); known fields are type-checked and
    defaulted from :data:`JOB_SPEC_DEFAULTS`.  Raises :class:`ValueError`
    with an operator-readable message on any problem.
    """
    if not isinstance(payload, Mapping):
        raise ValueError("job spec must be a JSON object")
    unknown = sorted(set(payload) - set(JOB_SPEC_DEFAULTS))
    if unknown:
        raise ValueError(
            f"unknown job spec field(s): {', '.join(unknown)}; "
            f"known fields: {', '.join(sorted(JOB_SPEC_DEFAULTS))}"
        )
    spec = dict(JOB_SPEC_DEFAULTS)
    spec.update({key: payload[key] for key in payload})
    for key in ("budget", "workers", "checkpoint_every"):
        if spec[key] is not None:
            if isinstance(spec[key], bool) or not isinstance(spec[key], int):
                raise ValueError(f"job spec field {key!r} must be an integer")
    if spec["budget"] is not None and spec["budget"] < 0:
        raise ValueError("job spec field 'budget' must be >= 0")
    if spec["workers"] is None or spec["workers"] < 1:
        raise ValueError("job spec field 'workers' must be >= 1")
    if spec["checkpoint_every"] is None or spec["checkpoint_every"] < 1:
        raise ValueError("job spec field 'checkpoint_every' must be >= 1")
    if spec["dedup"] is not None and not isinstance(spec["dedup"], bool):
        raise ValueError("job spec field 'dedup' must be a boolean")
    for key in ("algorithm", "fingerprint"):
        if spec[key] is not None and not isinstance(spec[key], str):
            raise ValueError(f"job spec field {key!r} must be a string")
    if not isinstance(spec["tenant"], str) or not spec["tenant"]:
        raise ValueError("job spec field 'tenant' must be a non-empty string")
    if spec["watch"] is not None:
        watch = spec["watch"]
        if not isinstance(watch, Mapping):
            raise ValueError("job spec field 'watch' must be an object")
        unknown = sorted(set(watch) - {"interval_s"})
        if unknown:
            raise ValueError(
                f"unknown watch field(s): {', '.join(unknown)}; "
                f"known fields: interval_s"
            )
        interval = watch.get("interval_s")
        if isinstance(interval, bool) or not isinstance(interval, (int, float)):
            raise ValueError("watch field 'interval_s' must be a number")
        if not interval > 0:
            raise ValueError("watch field 'interval_s' must be > 0")
        spec["watch"] = {"interval_s": float(interval)}
    return spec


def encode_job_spec(spec: Mapping[str, Any]) -> dict[str, Any]:
    """Job spec -> JSON-ready submission body (defaults dropped)."""
    return {
        key: spec[key]
        for key in JOB_SPEC_DEFAULTS
        if key in spec and spec[key] != JOB_SPEC_DEFAULTS[key]
    }


# ----------------------------------------------------------------------
# batches
# ----------------------------------------------------------------------


def encode_batch_request(
    queries: Sequence[Query], ids: Sequence[str]
) -> dict[str, Any]:
    """Queries + per-item request ids -> the ``/api/batch`` body."""
    if len(queries) != len(ids):
        raise ValueError(
            f"{len(queries)} queries but {len(ids)} request ids"
        )
    return {
        "items": [
            {"id": request_id, "query": encode_query(query)}
            for query, request_id in zip(queries, ids)
        ]
    }


def encode_batch_item(status: int, body: Mapping[str, Any]) -> dict[str, Any]:
    """One per-item outcome of a batch answer."""
    return {"status": int(status), "body": dict(body)}


def decode_batch_answer(
    payload: Mapping[str, Any], expected: int
) -> list[tuple[int, dict[str, Any]]]:
    """The ``/api/batch`` response -> ``[(status, body), ...]`` by position."""
    items = payload.get("items")
    if not isinstance(items, list) or len(items) != expected:
        raise ValueError(
            f"batch answer carries {len(items) if isinstance(items, list) else 'no'} "
            f"items, expected {expected}"
        )
    return [
        (int(item["status"]), dict(item["body"])) for item in items
    ]


__all__ = [
    "JOB_SPEC_DEFAULTS",
    "decode_answer",
    "decode_batch_answer",
    "decode_job_spec",
    "decode_query",
    "decode_row",
    "decode_schema",
    "encode_answer",
    "encode_batch_item",
    "encode_batch_request",
    "encode_job_spec",
    "encode_query",
    "encode_row",
    "encode_schema",
    "endpoint_descriptor",
    "endpoint_fingerprint",
    "fingerprint_of",
]
