"""Command-line interface: ``repro`` (or ``python -m repro.cli``).

Five subcommands, all running against the bundled generators so the paper's
system can be exercised without writing any code:

* ``discover``   -- run skyline discovery over a generated dataset;
* ``skyband``    -- run top-K skyband discovery;
* ``stats``      -- query-log statistics of a discovery run;
* ``algorithms`` -- list the registered discovery algorithms;
* ``figures``    -- list or run the figure-reproduction experiments.

Everything routes through the :class:`repro.Discoverer` facade, so the
``--algorithm`` flag accepts any name in the registry (including algorithms
registered by third-party plugins imported before the CLI runs).

Examples::

    repro discover --dataset diamonds --n 20000 --k 50
    repro discover --dataset flights-mixed --n 50000 --budget 500
    repro discover --dataset uniform --algorithm baseline
    repro skyband --dataset autos --n 5000 --band 3
    repro algorithms
    repro figures --list
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from .core import (
    AlgorithmNotFoundError,
    Discoverer,
    DiscoveryConfig,
    all_algorithms,
    summarize_log,
)
from .datagen import (
    autos_table,
    diamonds_table,
    flight_instance,
    flights_mixed_table,
    flights_pq_table,
    flights_range_table,
    independent,
)
from .experiments import ALL_FIGURES
from .experiments.reporting import format_table
from .hiddendb import LinearRanker, Table, TopKInterface

DATASETS: dict[str, Callable[[int, int], Table]] = {
    "diamonds": lambda n, seed: diamonds_table(n, seed=seed),
    "autos": lambda n, seed: autos_table(n, seed=seed),
    "gflights": lambda n, seed: flight_instance(seed=seed, n=n),
    "flights-range": lambda n, seed: flights_range_table(n, 5, seed=seed),
    "flights-pq": lambda n, seed: flights_pq_table(n, 4, seed=seed),
    "flights-mixed": lambda n, seed: flights_mixed_table(n, 3, 2, seed=seed),
    "uniform": lambda n, seed: independent(n, 4, domain=50, seed=seed),
}


def _build_interface(args) -> TopKInterface:
    table = DATASETS[args.dataset](args.n, args.seed)
    ranker = None
    if args.price_ranking:
        ranker = LinearRanker.single_attribute(0, table.schema.m)
    return TopKInterface(table, ranker=ranker, k=args.k)


def _discoverer(args, **config_kwargs) -> Discoverer:
    return Discoverer(DiscoveryConfig(budget=args.budget, **config_kwargs))


def _algorithm_arg(args) -> str | None:
    name = getattr(args, "algorithm", None)
    return None if name in (None, "auto") else name


def _cmd_discover(args) -> int:
    interface = _build_interface(args)
    result = _discoverer(args).run(interface, _algorithm_arg(args))
    print(f"dataset    : {args.dataset} (n={args.n}, k={args.k})")
    print(f"algorithm  : {result.algorithm}")
    print(f"queries    : {result.total_cost}")
    print(f"skyline    : {result.skyline_size} tuples")
    print(f"complete   : {result.complete}")
    if result.skyline_size:
        print(f"cost/tuple : {result.total_cost / result.skyline_size:.2f}")
    if args.show_tuples:
        for row in result.skyline[: args.show_tuples]:
            print(f"  {row.values}")
    if args.curve:
        print("\nanytime curve (cost, discovered):")
        for cost, count in result.discovery_curve():
            print(f"  {cost:6d}  {count}")
    return 0


def _cmd_skyband(args) -> int:
    interface = _build_interface(args)
    result = _discoverer(args).skyband(
        interface, args.band, _algorithm_arg(args)
    )
    print(f"dataset  : {args.dataset} (n={args.n}, k={args.k})")
    print(f"algorithm: {result.algorithm} (K={args.band})")
    print(f"queries  : {result.total_cost}")
    print(f"band     : {len(result.skyband)} tuples")
    print(f"complete : {result.complete}")
    return 0


def _cmd_stats(args) -> int:
    interface = _build_interface(args)
    result = _discoverer(args, record_log=True).run(
        interface, _algorithm_arg(args)
    )
    summary = summarize_log(result.query_log)
    print(f"algorithm: {result.algorithm}")
    print(format_table(summary.as_rows()))
    return 0


def _cmd_algorithms(args) -> int:
    print(f"{'name':10s} {'algorithm':12s} {'interfaces':10s} "
          f"{'capabilities':28s} summary")
    for spec in all_algorithms():
        print(
            f"{spec.name:10s} {spec.display_name:12s} "
            f"{'+'.join(spec.taxonomy):10s} "
            f"{','.join(sorted(spec.capabilities)) or '-':28s} "
            f"{spec.summary}"
        )
    return 0


def _cmd_figures(args) -> int:
    if args.list or not args.figures:
        for name, module in ALL_FIGURES.items():
            doc = (module.__doc__ or "").strip().splitlines()[0]
            print(f"{name:7s} {doc}")
        return 0
    for name in args.figures:
        if name not in ALL_FIGURES:
            print(f"unknown figure {name!r}; try --list", file=sys.stderr)
            return 2
        ALL_FIGURES[name].main()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Skyline discovery over top-k hidden web databases "
        "(Asudeh et al., VLDB 2016).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    algorithm_choices = ["auto"] + [spec.name for spec in all_algorithms()]

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--dataset", choices=sorted(DATASETS), required=True)
        sub.add_argument("--n", type=int, default=10_000,
                         help="dataset size (default 10000)")
        sub.add_argument("--k", type=int, default=10,
                         help="top-k of the interface (default 10)")
        sub.add_argument("--seed", type=int, default=0)
        sub.add_argument("--budget", type=int, default=None,
                         help="query rate limit (anytime mode)")
        sub.add_argument("--price-ranking", action="store_true",
                         help="rank by the first attribute only "
                         "(the live sites' default)")
        sub.add_argument("--algorithm", choices=algorithm_choices,
                         default="auto",
                         help="registered algorithm to run "
                         "(default: auto-dispatch on the schema taxonomy)")

    sub = subparsers.add_parser("discover", help="discover the skyline")
    add_common(sub)
    sub.add_argument("--show-tuples", type=int, default=0, metavar="N",
                     help="print the first N skyline tuples")
    sub.add_argument("--curve", action="store_true",
                     help="print the anytime discovery curve")
    sub.set_defaults(handler=_cmd_discover)

    sub = subparsers.add_parser("skyband", help="discover the top-K skyband")
    add_common(sub)
    sub.add_argument("--band", type=int, default=2, help="K (default 2)")
    sub.set_defaults(handler=_cmd_skyband)

    sub = subparsers.add_parser("stats", help="query-log statistics of a run")
    add_common(sub)
    sub.set_defaults(handler=_cmd_stats)

    sub = subparsers.add_parser(
        "algorithms", help="list the registered discovery algorithms"
    )
    sub.set_defaults(handler=_cmd_algorithms)

    sub = subparsers.add_parser("figures", help="figure experiments")
    sub.add_argument("figures", nargs="*", help="figure ids (e.g. fig13)")
    sub.add_argument("--list", action="store_true", help="list figures")
    sub.set_defaults(handler=_cmd_figures)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except (AlgorithmNotFoundError, ValueError) as exc:
        # e.g. --algorithm rq on a point-predicate dataset
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
