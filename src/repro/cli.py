"""Command-line interface: ``repro`` (or ``python -m repro.cli``).

Eleven subcommands, all running against the bundled generators so the
paper's system can be exercised without writing any code:

* ``discover``   -- run skyline discovery over a generated dataset;
* ``crawl``      -- durable discovery against a :mod:`repro.store` crawl
  store: every billed answer is ledgered, progress is checkpointed,
  ``--resume`` picks a killed crawl back up with zero double billing, and
  ``--delta`` incrementally repairs a previous crawl of a mutated
  endpoint instead of re-billing it from scratch;
* ``skyband``    -- run top-K skyband discovery;
* ``stats``      -- query-log statistics of a discovery run;
* ``algorithms`` -- list the registered discovery algorithms;
* ``figures``    -- list or run the figure-reproduction experiments;
* ``serve``      -- stand a generated dataset up as a networked top-k
  search service (:mod:`repro.service`), or an on-disk one via
  ``--table-db`` (millions of tuples, instant start, survives restarts);
* ``datagen``    -- build workload artifacts: ``datagen build-db``
  persists a generated dataset plus its rank index as a SQLite table;
* ``coordinate`` -- run the sharded multi-tenant crawl coordinator
  (:mod:`repro.coordinator`): accept discovery jobs over JSON and fan
  each one out across several backends sharing one crawl-store ledger;
* ``store``      -- inspect and maintain a crawl store
  (``ls`` / ``show`` / ``gc``, with ``gc --dry-run`` previewing what a
  pass would prune);
* ``mutate``     -- apply an insert/delete/update batch (or a drawn churn
  fraction) to a live service, bumping its data version.

Everything routes through the :class:`repro.Discoverer` facade, so the
``--algorithm`` flag accepts any name in the registry (including algorithms
registered by third-party plugins imported before the CLI runs).  The
``discover`` / ``skyband`` / ``stats`` commands accept ``--url`` to crawl a
remote service through :class:`repro.service.RemoteTopKInterface` instead
of building an in-process interface, and expose the execution engine:
``--workers N`` pipelines independent frontier queries (batched into
``--batch-size`` sized ``/api/batch`` round trips against the service),
``--dedup`` memoizes repeated identical queries within the run, and
``discover --verbose`` prints the resulting engine counters.

Examples::

    repro discover --dataset diamonds --n 20000 --k 50
    repro discover --dataset flights-mixed --n 50000 --budget 500
    repro discover --dataset uniform --algorithm baseline
    repro skyband --dataset autos --n 5000 --band 3
    repro algorithms
    repro figures --list

    # reproduce a paper figure over the wire (ephemeral servers) with a
    # 4-wide pipelined engine, or durably against a reusable ledger
    repro figures fig13 --remote --workers 4
    repro figures fig13 --store figs.db --resume

    # terminal 1: serve a hidden database (flaky, rate-limited)
    repro serve --dataset diamonds --n 20000 --k 10 --port 8080 \
        --key-budget 5000 --fault-rate 0.1

    # million-tuple serving: build the SQLite table once, then serve it
    # straight off its persisted rank index (instant start, ~no RAM)
    repro datagen build-db --dataset uniform --n 1000000 --out data.sqlite
    repro serve --table-db data.sqlite --k 10 --port 8080

    # terminal 2: crawl it over the wire -- 8 pipelined workers, 16
    # queries per round trip, run-scoped dedup, engine telemetry
    repro discover --url http://127.0.0.1:8080 --workers 8 --batch-size 16 \
        --dedup --verbose

    # same crawl on the asyncio data plane: one event loop, 32 queries
    # in flight on non-blocking sockets (no thread per worker)
    repro discover --url http://127.0.0.1:8080 --strategy async \
        --workers 32 --verbose

    # durable crawl: kill -9 it mid-run, rerun with --resume, and the
    # ledger replays every answer already paid for
    repro crawl --url http://127.0.0.1:8080 --store crawl.db --workers 8
    repro crawl --url http://127.0.0.1:8080 --store crawl.db --resume
    repro store ls --store crawl.db

    # the database changed under you: churn 10% of it, then repair the
    # crawl incrementally -- unchanged answers replay free, only the
    # moved parts of the data are re-billed
    repro mutate --url http://127.0.0.1:8080 --churn 0.10
    repro crawl --url http://127.0.0.1:8080 --store crawl.db --delta
    repro store gc --store crawl.db --dry-run

    # discovery-jobs-as-a-service: shard crawls over two mirrors of the
    # same database (each with its own API key), one shared ledger
    repro coordinate --store jobs.db --port 8090 \
        --backend http://db-a:8080=key1 --backend http://db-b:8080=key2
    # submit: POST {"tenant": "alice", "budget": 500} to /api/jobs, poll
    # GET /api/jobs/<id>; a killed coordinator restarts with --resume
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from .core import (
    STRATEGY_NAMES,
    AlgorithmNotFoundError,
    Discoverer,
    DiscoveryConfig,
    all_algorithms,
    summarize_log,
)
from .datagen import (
    autos_table,
    diamonds_table,
    flight_instance,
    flights_mixed_table,
    flights_pq_table,
    flights_range_table,
    independent,
)
from .experiments import ALL_FIGURES
from .experiments.reporting import format_engine_stats, format_table
from .hiddendb import LinearRanker, Table, TopKInterface
from .service.client import RemoteServiceError
from .service.server import ServiceStartupError
from .store import CrawlStore, StoreError

DATASETS: dict[str, Callable[[int, int], Table]] = {
    "diamonds": lambda n, seed: diamonds_table(n, seed=seed),
    "autos": lambda n, seed: autos_table(n, seed=seed),
    "gflights": lambda n, seed: flight_instance(seed=seed, n=n),
    "flights-range": lambda n, seed: flights_range_table(n, 5, seed=seed),
    "flights-pq": lambda n, seed: flights_pq_table(n, 4, seed=seed),
    "flights-mixed": lambda n, seed: flights_mixed_table(n, 3, 2, seed=seed),
    "uniform": lambda n, seed: independent(n, 4, domain=50, seed=seed),
}


def _build_table(args) -> Table:
    if not args.dataset:
        raise ValueError("--dataset is required (or pass --url for a remote run)")
    return DATASETS[args.dataset](args.n, args.seed)


def _build_ranker(args, table: Table) -> LinearRanker | None:
    if args.price_ranking:
        return LinearRanker.single_attribute(0, table.schema.m)
    return None


def _dataset_label(args) -> str:
    """Endpoint identity of a locally generated dataset.

    Feeds the crawl store's fingerprint, so it must pin everything that
    determines the answers: dataset, size, seed and ranking choice (the
    schema and ``k`` are fingerprinted separately).
    """
    label = f"{args.dataset}-n{args.n}-s{args.seed}"
    if args.price_ranking:
        label += "-price"
    return label


def _build_interface(args):
    if getattr(args, "url", None):
        from .service import RemoteTopKInterface

        return RemoteTopKInterface(
            args.url,
            api_key=args.api_key,
            cache_size=args.cache or None,
        )
    table = _build_table(args)
    return TopKInterface(
        table,
        ranker=_build_ranker(args, table),
        k=args.k,
        name=_dataset_label(args),
    )


def _source_label(args, interface) -> str:
    if getattr(args, "url", None):
        return f"{args.url} (remote, k={interface.k})"
    return f"{args.dataset} (n={args.n}, k={args.k})"


def _print_remote_telemetry(args, interface) -> None:
    """Remote-client counters (both flavours share ``QueryClientCore``).

    ``getattr`` defaults keep this safe for interfaces that expose only a
    subset (e.g. an :class:`~repro.coordinator.endpoints.EndpointSet` has
    no ledger-hit split).
    """
    if not getattr(args, "url", None):
        return
    issued = getattr(interface, "queries_issued", 0)
    hits = getattr(interface, "cache_hits", 0)
    retries = getattr(interface, "retries", 0)
    print(f"billable   : {issued} "
          f"(cache hits {hits}, retries {retries})")
    if getattr(args, "verbose", False):
        flavour = type(interface).__name__
        ledger_hits = getattr(interface, "ledger_hits", 0)
        remaining = getattr(interface, "budget_remaining", None)
        headroom = "unlimited" if remaining is None else str(remaining)
        print(f"client     : {flavour} "
              f"(ledger hits {ledger_hits}, budget remaining {headroom})")


def _print_result_header(args, interface, result, queries_suffix="") -> None:
    """The summary block shared by ``discover`` and ``crawl``."""
    print(f"dataset    : {_source_label(args, interface)}")
    print(f"algorithm  : {result.algorithm}")
    print(f"queries    : {result.total_cost}{queries_suffix}")
    print(f"skyline    : {result.skyline_size} tuples")
    print(f"complete   : {result.complete}")


def _print_result_details(args, interface, result) -> None:
    """Telemetry/engine/tuple output shared by the discovery commands."""
    _print_remote_telemetry(args, interface)
    if args.verbose:
        print(format_engine_stats(result.stats))
    if args.show_tuples:
        rows = getattr(result, "skyline", None)
        if rows is None:
            rows = result.skyband
        for row in rows[: args.show_tuples]:
            print(f"  {row.values}")


def _build_interface_for(args, strategy: str | None):
    """Build the endpoint, matching the client flavour to the strategy.

    Remote crawls under ``--strategy async`` get the non-blocking
    :class:`~repro.service.aclient.AsyncRemoteTopKInterface` (pooled
    event-loop sockets); everything else keeps the blocking client.
    """
    if getattr(args, "url", None) and strategy == "async":
        from .service import AsyncRemoteTopKInterface

        return AsyncRemoteTopKInterface(
            args.url,
            api_key=args.api_key,
            cache_size=args.cache or None,
        )
    return _build_interface(args)


def _workers_arg(value: str) -> "int | str":
    """argparse type for ``--workers``: a positive int or ``auto``."""
    if value == "auto":
        return "auto"
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive int or 'auto', got {value!r}"
        ) from None


def _discoverer(args, **config_kwargs) -> Discoverer:
    return Discoverer(
        DiscoveryConfig(
            budget=args.budget,
            strategy=getattr(args, "strategy", None),
            workers=getattr(args, "workers", 1),
            batch_size=getattr(args, "batch_size", 16),
            min_workers=getattr(args, "min_workers", None),
            max_workers=getattr(args, "max_workers", None),
            dedup=True if getattr(args, "dedup", False) else None,
            trace=getattr(args, "trace", None),
            **config_kwargs,
        )
    )


def _algorithm_arg(args) -> str | None:
    name = getattr(args, "algorithm", None)
    return None if name in (None, "auto") else name


def _cmd_discover(args) -> int:
    interface = _build_interface_for(args, getattr(args, "strategy", None))
    result = _discoverer(args).run(interface, _algorithm_arg(args))
    _print_result_header(args, interface, result)
    if result.skyline_size:
        print(f"cost/tuple : {result.total_cost / result.skyline_size:.2f}")
    _print_result_details(args, interface, result)
    if args.curve:
        print("\nanytime curve (cost, discovered):")
        for cost, count in result.discovery_curve():
            print(f"  {cost:6d}  {count}")
    return 0


def _cmd_crawl(args) -> int:
    with CrawlStore(args.store) as store:
        return _run_crawl(args, store)


def _run_crawl(args, store: CrawlStore) -> int:
    interface = _build_interface_for(args, getattr(args, "strategy", None))
    extra = {}
    if args.delta or args.delta_strict:
        extra["mode"] = "delta"
        if args.delta_strict:
            extra["options"] = {"delta_strict": True}
    result = _discoverer(
        args,
        store=store,
        resume=args.resume,
        checkpoint_every=args.checkpoint_every,
        **extra,
    ).run(interface, _algorithm_arg(args))
    # Report the session THIS run billed under (result.store_session),
    # re-read for its final billed counter -- another crawl sharing the
    # store may have finished in between.
    record = result.store_session
    session = store.session(record.session_id) or record
    endpoint = next(
        e for e in store.endpoints() if e.fingerprint == record.fingerprint
    )
    freshness = getattr(result, "freshness", None)
    prior = session.billed - (result.stats.issued if result.stats else 0)
    _print_result_header(
        args, interface, result,
        # Delta repairs span several engine rounds, so the single-run
        # issued counter cannot split prior from new billing; the
        # freshness block below carries the repair accounting instead.
        queries_suffix=(f" ({prior} billed before resume)"
                        if prior > 0 and freshness is None else ""),
    )
    print(f"store      : {store.path}")
    print(f"session    : {session.session_id} "
          f"({'resumed' if record.resumed else 'new'}, "
          f"billed={session.billed})")
    print(f"ledger     : {endpoint.ledger_entries} answers owned for "
          f"endpoint {endpoint.name or '<unnamed>'} "
          f"[{endpoint.fingerprint[:8]}]")
    if freshness is not None:
        print(f"freshness  : repaired to epoch {freshness.epoch} in "
              f"{freshness.rounds} round(s): {freshness.stale_entries} "
              f"stale entries, {freshness.probes} probes, "
              f"{freshness.served_stale} served stale, "
              f"{freshness.revalidated} revalidated")
        if freshness.skyline_changed:
            print(f"changed    : skyline +{len(freshness.skyline_added)} "
                  f"-{len(freshness.skyline_removed)} vs the previous crawl")
        else:
            print("changed    : skyline unchanged vs the previous crawl")
    _print_result_details(args, interface, result)
    return 0


def _cmd_skyband(args) -> int:
    interface = _build_interface_for(args, getattr(args, "strategy", None))
    result = _discoverer(args).skyband(
        interface, args.band, _algorithm_arg(args)
    )
    print(f"dataset  : {_source_label(args, interface)}")
    print(f"algorithm: {result.algorithm} (K={args.band})")
    print(f"queries  : {result.total_cost}")
    print(f"band     : {len(result.skyband)} tuples")
    print(f"complete : {result.complete}")
    _print_result_details(args, interface, result)
    return 0


def _cmd_stats(args) -> int:
    interface = _build_interface_for(args, getattr(args, "strategy", None))
    result = _discoverer(args, record_log=True).run(
        interface, _algorithm_arg(args)
    )
    summary = summarize_log(result.query_log)
    print(f"algorithm: {result.algorithm}")
    print(format_table(summary.as_rows()))
    return 0


def _cmd_algorithms(args) -> int:
    print(f"{'name':10s} {'algorithm':12s} {'interfaces':10s} "
          f"{'capabilities':28s} summary")
    for spec in all_algorithms():
        print(
            f"{spec.name:10s} {spec.display_name:12s} "
            f"{'+'.join(spec.taxonomy):10s} "
            f"{','.join(sorted(spec.capabilities)) or '-':28s} "
            f"{spec.summary}"
        )
    return 0


def _cmd_serve(args) -> int:
    from .service import FaultConfig, HiddenDBServer

    engine = "auto"
    if args.table_db:
        from pathlib import Path

        from .hiddendb import SQLTable, ranker_from_label

        sql = SQLTable(args.table_db)
        name = sql.name or Path(args.table_db).stem
        # The persisted rank index pins the ranking; serving under any
        # other would answer in a different order than the index provides.
        ranker = ranker_from_label(sql.ranking_label)
        if args.engine == "memory":
            table = sql.as_memory()  # rank-ordered in-memory fast path
        else:
            table = sql  # SQL-native: tuples never loaded into memory
            engine = "sqlite"
        dataset = name
    else:
        if args.engine == "sqlite":
            print("error: --engine sqlite needs --table-db", file=sys.stderr)
            return 2
        if not args.dataset:
            print("error: --dataset or --table-db is required", file=sys.stderr)
            return 2
        table = _build_table(args)
        ranker = _build_ranker(args, table)
        name = _dataset_label(args)
        dataset = args.dataset
    faults = None
    if args.fault_rate > 0 or max(args.latency_ms) > 0:
        faults = FaultConfig(
            error_rate=args.fault_rate,
            error_codes=tuple(args.fault_codes),
            latency=(args.latency_ms[0] / 1000.0, args.latency_ms[1] / 1000.0),
            seed=args.fault_seed,
        )
    server = HiddenDBServer(
        table,
        ranker,
        k=args.k,
        host=args.host,
        port=args.port,
        key_budget=args.key_budget,
        faults=faults,
        rate_limit=args.rate_limit,
        burst=args.burst,
        max_inflight=args.max_inflight,
        # The name is the served dataset's identity: crawl stores fold it
        # into their endpoint fingerprint, so serving different data under
        # the same name would wrongly share a ledger.
        name=name,
        engine=engine,
    )
    server.start()
    # flush=True throughout: the URL line must reach a redirected/piped log
    # immediately, or anything polling the log for the bound port hangs.
    print(f"serving    : {dataset} (n={table.n}, k={args.k}, "
          f"engine={server.engine}) at {server.url}",
          flush=True)
    # The actual bound port on its own line: '--port 0' callers (tests,
    # CI scripts) parse this instead of regexing the URL.
    print(f"port       : {server.port}", flush=True)
    print(f"key budget : {args.key_budget if args.key_budget is not None else 'unlimited'}")
    if faults is not None:
        print(f"faults     : rate={faults.error_rate} codes={faults.error_codes} "
              f"latency={args.latency_ms[0]}-{args.latency_ms[1]}ms")
    if args.rate_limit is not None or args.max_inflight is not None:
        shaping = []
        if args.rate_limit is not None:
            burst = args.burst if args.burst is not None \
                else max(1, round(args.rate_limit))
            shaping.append(f"rate={args.rate_limit:g}qps burst={burst}")
        if args.max_inflight is not None:
            shaping.append(f"max-inflight={args.max_inflight}")
        print("shaping    : " + " ".join(shaping))
    print("endpoints  : GET /api/schema  POST /api/query  GET /api/stats  "
          "POST /api/reset  GET /healthz")
    print("crawl with : repro discover --url " + server.url, flush=True)
    try:
        server.wait(args.duration)
    except KeyboardInterrupt:
        pass
    finally:
        stats = server.stats()
        server.stop()
        print(f"served     : {stats.queries_total} queries "
              f"({stats.faults_injected} faults injected)")
    return 0


def _cmd_build_db(args) -> int:
    import time
    from pathlib import Path

    from .datagen import table_to_sqlite

    generated = time.perf_counter()
    table = _build_table(args)
    generated = time.perf_counter() - generated
    ranker = _build_ranker(args, table)
    built = time.perf_counter()
    path = table_to_sqlite(args.out, table, ranker, name=_dataset_label(args))
    built = time.perf_counter() - built
    size_mb = Path(path).stat().st_size / 1e6
    ranking = ranker.describe() if ranker is not None else "LinearRanker"
    print(f"built      : {path} ({table.n} tuples, {size_mb:.1f} MB)")
    print(f"dataset    : {_dataset_label(args)}")
    print(f"ranking    : {ranking} (persisted as the rank index)")
    print(f"timing     : generate {generated:.1f}s, build {built:.1f}s")
    print(f"serve with : repro serve --table-db {path} --k {args.k}",
          flush=True)
    return 0


def _cmd_coordinate(args) -> int:
    from .coordinator import CrawlCoordinator, EndpointSetError

    coordinator = CrawlCoordinator(
        args.backend,
        args.store,
        host=args.host,
        port=args.port,
        workers_per_backend=args.workers,
        max_parallel_jobs=args.max_jobs,
        resume=args.resume,
    )
    try:
        coordinator.start()
    except EndpointSetError as exc:
        # e.g. two --backend mirrors serving different datasets
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        # flush=True: CI scripts poll the log for the bound port.
        print(f"coordinator: {len(coordinator.backends)} backend(s) "
              f"[{coordinator.fingerprint[:8]}] at {coordinator.url}",
              flush=True)
        print(f"port       : {coordinator.port}", flush=True)
        print(f"store      : {args.store}")
        print("endpoints  : GET /healthz  GET/POST /api/jobs  "
              "GET/DELETE /api/jobs/<id>  GET /api/schema", flush=True)
        coordinator.wait(args.duration)
    except KeyboardInterrupt:
        pass
    finally:
        coordinator.stop()
    return 0


def _cmd_store_ls(args) -> int:
    with CrawlStore(args.store) as store:
        endpoints = store.endpoints()
        print(f"store      : {store.path}")
        if not endpoints:
            print("(empty store)")
            return 0
        print(format_table([
            {
                "endpoint": e.name or "<unnamed>",
                "schema": e.fingerprint[:8],
                "k": e.k,
                "ledger": e.ledger_entries,
            }
            for e in endpoints
        ]))
        sessions = store.sessions()
        if sessions:
            print()
            print(format_table([
                {
                    "session": s.session_id,
                    "algorithm": s.algorithm or "-",
                    "status": s.status,
                    "billed": s.billed,
                    "cost": (s.result or {}).get("total_cost", ""),
                    "skyline": (s.result or s.checkpoint or {}).get(
                        "skyline_size", ""
                    ),
                }
                for s in sessions
            ]))
        jobs = store.jobs()
        if jobs:
            print()
            print(format_table([
                {
                    "job": j.job_id,
                    "tenant": j.tenant,
                    "algorithm": j.algorithm or "-",
                    "status": j.status,
                    "backends": j.backends,
                    "billed": j.progress.get("billed", ""),
                    "shards": "/".join(
                        str(s.get("issued", 0))
                        for s in j.progress.get("shards", [])
                    ) or "-",
                    "session": j.session_id,
                }
                for j in jobs
            ]))
    return 0


def _cmd_store_show(args) -> int:
    import json as _json

    with CrawlStore(args.store) as store:
        session = store.session(args.session)
        if session is None:
            print(f"error: no session {args.session!r} in {store.path}",
                  file=sys.stderr)
            return 2
        print(f"session    : {session.session_id}")
        print(f"endpoint   : {session.fingerprint}")
        print(f"algorithm  : {session.algorithm or '-'}")
        print(f"status     : {session.status}")
        print(f"billed     : {session.billed}")
        epoch = store.endpoint_data_version(session.fingerprint)
        histogram = store.ledger_epoch_histogram(session.fingerprint)
        if histogram or epoch:
            spread = "  ".join(
                f"v{version}:{count}"
                for version, count in sorted(histogram.items())
            ) or "-"
            stale = store.ledger_stale_count(session.fingerprint)
            print(f"data epoch : {epoch}")
            print(f"epochs     : {spread}")
            print(f"stale      : {stale} ledger entries billed at an "
                  f"older epoch or past their TTL")
        if session.checkpoint:
            print("checkpoint :",
                  _json.dumps(dict(session.checkpoint), indent=2))
        if session.result is not None:
            print("result     :",
                  _json.dumps(dict(session.result), indent=2))
    return 0


def _cmd_store_gc(args) -> int:
    with CrawlStore(args.store) as store:
        report = store.gc(dry_run=args.dry_run)
        verb = "would prune" if report.dry_run else "pruned"
        print(f"store      : {store.path}")
        print(f"{verb:<11}: {report.endpoints_pruned} endpoints, "
              f"{report.ledger_pruned} orphaned + {report.stale_pruned} "
              f"stale-epoch + {report.expired_pruned} expired ledger "
              f"entries, {report.sessions_pruned} sessions, "
              f"{report.jobs_pruned} jobs")
        if not report.total:
            print("(nothing stale)")
    return 0


def _cmd_mutate(args) -> int:
    from .service import RemoteTopKInterface

    if (args.churn is None) == (args.ops is None):
        print("error: exactly one of --churn or --ops is required",
              file=sys.stderr)
        return 2
    if args.ops is not None:
        import json as _json

        try:
            ops = _json.loads(args.ops)
        except ValueError as exc:
            print(f"error: --ops is not valid JSON: {exc}", file=sys.stderr)
            return 2
        if not isinstance(ops, list):
            print("error: --ops must be a JSON array of operations",
                  file=sys.stderr)
            return 2
    with RemoteTopKInterface(args.url, api_key=args.api_key) as client:
        before = client.data_version
        if args.churn is not None:
            payload = client.mutate(
                churn={"frac": args.churn, "seed": args.churn_seed}
            )
        else:
            payload = client.mutate(ops)
        print(f"endpoint   : {args.url}")
        print(f"applied    : {payload['applied']} mutation(s)")
        print(f"data epoch : {before} -> {payload['data_version']}")
        print("refresh    : repro crawl --delta --url "
              f"{args.url} --store <PATH>")
    return 0


def _cmd_figures(args) -> int:
    if args.list or not args.figures:
        for name, module in ALL_FIGURES.items():
            doc = (module.__doc__ or "").strip().splitlines()[0]
            print(f"{name:7s} {doc}")
        return 0
    for name in args.figures:
        if name not in ALL_FIGURES:
            print(f"unknown figure {name!r}; try --list", file=sys.stderr)
            return 2
    from .experiments.common import configure_experiments, reset_experiments

    configure_experiments(
        remote=args.remote,
        store=args.store,
        resume=args.resume,
        strategy=args.strategy,
        workers=args.workers,
        batch_size=args.batch_size,
        dedup=args.dedup or None,
    )
    try:
        for name in args.figures:
            ALL_FIGURES[name].main()
    finally:
        reset_experiments()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Skyline discovery over top-k hidden web databases "
        "(Asudeh et al., VLDB 2016).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    algorithm_choices = ["auto"] + [spec.name for spec in all_algorithms()]

    def add_dataset(sub: argparse.ArgumentParser, required: bool) -> None:
        sub.add_argument("--dataset", choices=sorted(DATASETS),
                         required=required)
        sub.add_argument("--n", type=int, default=10_000,
                         help="dataset size (default 10000)")
        sub.add_argument("--k", type=int, default=10,
                         help="top-k of the interface (default 10)")
        sub.add_argument("--seed", type=int, default=0)
        sub.add_argument("--price-ranking", action="store_true",
                         help="rank by the first attribute only "
                         "(the live sites' default)")

    def add_common(sub: argparse.ArgumentParser) -> None:
        add_dataset(sub, required=False)
        sub.add_argument("--budget", type=int, default=None,
                         help="query rate limit (anytime mode)")
        sub.add_argument("--algorithm", choices=algorithm_choices,
                         default="auto",
                         help="registered algorithm to run "
                         "(default: auto-dispatch on the schema taxonomy)")
        sub.add_argument("--url", default=None, metavar="URL",
                         help="crawl a remote hidden-DB service instead of "
                         "building one in-process (see 'repro serve'); "
                         "--dataset/--n/--k/--seed are ignored")
        sub.add_argument("--api-key", default="anonymous",
                         help="billing identity for --url runs")
        sub.add_argument("--cache", type=int, default=0, metavar="SIZE",
                         help="client-side LRU query cache for --url runs "
                         "(cache hits are not billed; default off)")
        sub.add_argument("--strategy", choices=list(STRATEGY_NAMES),
                         default=None,
                         help="execution strategy draining the query "
                         "frontier: 'serial' (one query at a time, the "
                         "parity reference), 'pipelined' (a thread pool of "
                         "--workers blocking dispatchers) or 'async' (an "
                         "event loop keeping --workers queries in flight "
                         "on non-blocking sockets; remote runs get the "
                         "asyncio client).  Default: pipelined when "
                         "--workers > 1, serial otherwise (the historical "
                         "behaviour).  All strategies produce the same "
                         "skyline and billed cost")
        sub.add_argument("--workers", type=_workers_arg, default=1,
                         metavar="N|auto",
                         help="dispatch-window width: how many independent "
                         "frontier queries are kept in flight (default 1 = "
                         "serial; skyline and query cost are unchanged). "
                         "'auto' enables AIMD adaptive control: the window "
                         "grows on clean completions and halves on 429/503/"
                         "timeout pressure, honoring server Retry-After "
                         "hints, within [--min-workers, --max-workers]")
        sub.add_argument("--min-workers", type=int, default=None, metavar="N",
                         help="adaptive window floor (needs --workers auto; "
                         "default 1)")
        sub.add_argument("--max-workers", type=int, default=None, metavar="N",
                         help="adaptive window ceiling (needs --workers "
                         "auto; default 32)")
        sub.add_argument("--batch-size", type=int, default=16, metavar="N",
                         help="queries packed per batch round trip when the "
                         "endpoint supports batching (default 16; needs "
                         "--workers > 1)")
        sub.add_argument("--dedup", action="store_true",
                         help="memoize repeated identical queries within "
                         "the run (hits are never billed)")
        sub.add_argument("--trace", default=None, metavar="PATH",
                         help="write query-lifecycle spans (classification, "
                         "billing, transport, merge) to PATH as JSON Lines; "
                         "tracing never changes the skyline or billed cost")

    def add_output_flags(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--show-tuples", type=int, default=0, metavar="N",
                         help="print the first N skyline tuples")
        sub.add_argument("--verbose", action="store_true",
                         help="print execution-engine counters (dispatch "
                         "strategy, dedup/ledger savings, batching)")

    sub = subparsers.add_parser("discover", help="discover the skyline")
    add_common(sub)
    add_output_flags(sub)
    sub.add_argument("--curve", action="store_true",
                     help="print the anytime discovery curve")
    sub.set_defaults(handler=_cmd_discover)

    sub = subparsers.add_parser(
        "crawl",
        help="durable skyline discovery against a crawl store "
        "(resumable; never re-bills an owned answer)",
    )
    add_common(sub)
    sub.add_argument("--store", required=True, metavar="PATH",
                     help="SQLite crawl store holding the query ledger, "
                     "session checkpoints and result catalog")
    sub.add_argument("--resume", action="store_true",
                     help="pick up the most recent unfinished crawl of "
                     "this endpoint+algorithm instead of starting fresh")
    sub.add_argument("--checkpoint-every", type=int, default=32, metavar="N",
                     help="answers between progress checkpoints "
                     "(default 32; the billed counter is always exact)")
    sub.add_argument("--delta", action="store_true",
                     help="incremental repair: probe the previous crawl's "
                     "skyline, serve unchanged ledger answers free and "
                     "re-bill only where the endpoint's data moved "
                     "(needs a prior crawl of this endpoint in --store)")
    sub.add_argument("--delta-strict", action="store_true",
                     help="with --delta: also re-verify every emptiness "
                     "certificate not provably still covered -- catches "
                     "inserts hiding in regions the old crawl proved "
                     "empty, at a higher repair cost (implies --delta)")
    add_output_flags(sub)
    sub.set_defaults(handler=_cmd_crawl)

    sub = subparsers.add_parser("skyband", help="discover the top-K skyband")
    add_common(sub)
    sub.add_argument("--band", type=int, default=2, help="K (default 2)")
    add_output_flags(sub)
    sub.set_defaults(handler=_cmd_skyband)

    sub = subparsers.add_parser("stats", help="query-log statistics of a run")
    add_common(sub)
    sub.set_defaults(handler=_cmd_stats)

    sub = subparsers.add_parser(
        "algorithms", help="list the registered discovery algorithms"
    )
    sub.set_defaults(handler=_cmd_algorithms)

    sub = subparsers.add_parser(
        "serve", help="serve a dataset as a networked top-k search service"
    )
    add_dataset(sub, required=False)
    sub.add_argument("--table-db", default=None, metavar="PATH",
                     help="serve a SQLite table built by 'repro datagen "
                     "build-db' instead of generating one in memory: "
                     "starts instantly at any size and survives restarts "
                     "(--dataset/--n/--seed are then ignored)")
    sub.add_argument("--engine", choices=["auto", "memory", "sqlite"],
                     default="auto",
                     help="serving engine for --table-db: 'sqlite' answers "
                     "straight off the persisted rank index (default for "
                     "--table-db), 'memory' loads the table and uses the "
                     "rank-ordered in-memory fast path; both are "
                     "bit-identical (default auto)")
    sub.add_argument("--host", default="127.0.0.1")
    sub.add_argument("--port", type=int, default=8080,
                     help="bind port; 0 picks an ephemeral one (default 8080)")
    sub.add_argument("--key-budget", type=int, default=None,
                     help="per-API-key query budget (default unlimited)")
    sub.add_argument("--fault-rate", type=float, default=0.0,
                     help="probability of an injected retriable error "
                     "per query (default 0)")
    sub.add_argument("--fault-codes", type=int, nargs="+",
                     default=[429, 503],
                     help="HTTP codes injected faults draw from")
    sub.add_argument("--latency-ms", type=float, nargs=2, default=[0.0, 0.0],
                     metavar=("LO", "HI"),
                     help="uniform latency jitter bounds in milliseconds")
    sub.add_argument("--fault-seed", type=int, default=0)
    sub.add_argument("--rate-limit", type=float, default=None, metavar="QPS",
                     help="per-API-key sustained query rate, token-bucket "
                     "enforced; over-rate requests get a 429 with an "
                     "honest Retry-After (default unlimited)")
    sub.add_argument("--burst", type=int, default=None, metavar="N",
                     help="token-bucket burst capacity for --rate-limit "
                     "(default: round(QPS))")
    sub.add_argument("--max-inflight", type=int, default=None, metavar="N",
                     help="server-wide concurrency cap; excess queries are "
                     "shed with a retriable 503 (default unbounded)")
    sub.add_argument("--duration", type=float, default=None, metavar="SECONDS",
                     help="stop after this many seconds "
                     "(default: run until interrupted)")
    sub.set_defaults(handler=_cmd_serve)

    sub = subparsers.add_parser(
        "datagen",
        help="build workload artifacts (SQLite tables for 'serve --table-db')",
    )
    datagen_actions = sub.add_subparsers(dest="datagen_action", required=True)
    action = datagen_actions.add_parser(
        "build-db",
        help="generate a dataset and persist it (with its rank index) "
        "as a SQLite table",
    )
    add_dataset(action, required=True)
    action.add_argument("--out", required=True, metavar="PATH",
                        help="output SQLite file (overwritten if present)")
    action.set_defaults(handler=_cmd_build_db)

    sub = subparsers.add_parser(
        "coordinate",
        help="serve discovery jobs over a sharded pool of hidden-DB "
        "backends sharing one crawl-store ledger",
    )
    sub.add_argument("--store", required=True, metavar="PATH",
                     help="shared crawl store (ledger, sessions, job catalog)")
    sub.add_argument("--backend", action="append", required=True,
                     metavar="URL[=APIKEY]",
                     help="a hidden-DB service to fan queries out to; "
                     "repeat for each mirror (all must serve the same "
                     "endpoint fingerprint)")
    sub.add_argument("--host", default="127.0.0.1")
    sub.add_argument("--port", type=int, default=8090,
                     help="bind port; 0 picks an ephemeral one (default 8090)")
    sub.add_argument("--workers", type=int, default=4, metavar="N",
                     help="default in-flight window per backend per job "
                     "(a job's 'workers' field overrides it; default 4)")
    sub.add_argument("--max-jobs", type=int, default=4, metavar="N",
                     help="jobs crawled concurrently (default 4)")
    sub.add_argument("--resume", action="store_true",
                     help="re-enqueue every catalog job still queued or "
                     "running (recover from a killed coordinator)")
    sub.add_argument("--duration", type=float, default=None, metavar="SECONDS",
                     help="stop after this many seconds "
                     "(default: run until interrupted)")
    sub.set_defaults(handler=_cmd_coordinate)

    sub = subparsers.add_parser(
        "store", help="inspect and maintain a crawl store"
    )
    actions = sub.add_subparsers(dest="action", required=True)

    def add_store_path(action: argparse.ArgumentParser) -> None:
        action.add_argument("--store", required=True, metavar="PATH",
                            help="crawl store database file")

    action = actions.add_parser(
        "ls", help="list registered endpoints and crawl sessions"
    )
    add_store_path(action)
    action.set_defaults(handler=_cmd_store_ls)

    action = actions.add_parser(
        "show", help="show one crawl session (checkpoint and result)"
    )
    action.add_argument("session", help="session id (see 'repro store ls')")
    add_store_path(action)
    action.set_defaults(handler=_cmd_store_show)

    action = actions.add_parser(
        "gc", help="prune stale endpoints, ledger entries and sessions"
    )
    add_store_path(action)
    action.add_argument("--dry-run", action="store_true",
                        help="report what a gc pass would remove (stale "
                        "epochs, lapsed TTLs, orphans) without deleting "
                        "anything")
    action.set_defaults(handler=_cmd_store_gc)

    sub = subparsers.add_parser(
        "mutate",
        help="apply a mutation batch to a live hidden-DB service "
        "(POST /api/mutate; bumps its data version)",
    )
    sub.add_argument("--url", required=True, metavar="URL",
                     help="the service to mutate (see 'repro serve')")
    sub.add_argument("--api-key", default="anonymous",
                     help="client identity (mutations are never billed)")
    sub.add_argument("--churn", type=float, default=None, metavar="FRAC",
                     help="draw a deterministic server-side churn batch "
                     "touching ~FRAC of the tuples")
    sub.add_argument("--churn-seed", type=int, default=0,
                     help="seed of the server-side churn draw (default 0)")
    sub.add_argument("--ops", default=None, metavar="JSON",
                     help="explicit operation batch as a JSON array, e.g. "
                     '\'[{"op": "delete", "rid": 3}, '
                     '{"op": "insert", "values": [1, 2]}]\'')
    sub.set_defaults(handler=_cmd_mutate)

    sub = subparsers.add_parser("figures", help="figure experiments")
    sub.add_argument("figures", nargs="*", help="figure ids (e.g. fig13)")
    sub.add_argument("--list", action="store_true", help="list figures")
    sub.add_argument("--remote", action="store_true",
                     help="serve each experiment table from an ephemeral "
                     "HiddenDBServer and reproduce the figure over HTTP "
                     "(numbers are unchanged by construction)")
    sub.add_argument("--store", metavar="PATH", default=None,
                     help="ledger every billed answer in a crawl store so "
                     "re-running a figure replays it free")
    sub.add_argument("--resume", action="store_true",
                     help="resume checkpointed figure runs from --store")
    sub.add_argument("--strategy", choices=list(STRATEGY_NAMES), default=None,
                     help="execution strategy for the figure crawls "
                     "(default: pipelined when --workers > 1, else serial)")
    sub.add_argument("--workers", type=int, default=1, metavar="N",
                     help="in-flight window per crawl (default 1 = serial)")
    sub.add_argument("--batch-size", type=int, default=16, metavar="N",
                     help="queries per batch round trip (default 16)")
    sub.add_argument("--dedup", action="store_true",
                     help="memoize repeated identical queries within a run")
    sub.set_defaults(handler=_cmd_figures)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except (AlgorithmNotFoundError, StoreError, ValueError) as exc:
        # e.g. --algorithm rq on a point-predicate dataset, --strategy
        # serial with --workers 8, or --store pointing at a ledger built
        # against a different dataset/k
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ServiceStartupError as exc:
        # e.g. 'repro serve --port 8080' while another server holds 8080:
        # one actionable line instead of an OSError traceback
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except RemoteServiceError as exc:
        # e.g. 'repro coordinate --backend URL' against a dead backend
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
